package hashing

// MT19937 is the 32-bit Mersenne Twister of Matsumoto and Nishimura,
// the generator the paper uses for pseudo-random numbers (reference [29]).
// It is not safe for concurrent use; every PE owns its own instance.
type MT19937 struct {
	state [mtN]uint32
	index int
}

const (
	mtN         = 624
	mtM         = 397
	mtMatrixA   = 0x9908b0df
	mtUpperMask = 0x80000000
	mtLowerMask = 0x7fffffff
)

// NewMT19937 returns a generator initialised with seed, following the
// reference initialisation (init_genrand).
func NewMT19937(seed uint32) *MT19937 {
	m := &MT19937{}
	m.Seed(seed)
	return m
}

// Seed re-initialises the generator state from seed.
func (m *MT19937) Seed(seed uint32) {
	m.state[0] = seed
	for i := uint32(1); i < mtN; i++ {
		prev := m.state[i-1]
		m.state[i] = 1812433253*(prev^(prev>>30)) + i
	}
	m.index = mtN
}

func (m *MT19937) generate() {
	for i := 0; i < mtN; i++ {
		y := (m.state[i] & mtUpperMask) | (m.state[(i+1)%mtN] & mtLowerMask)
		next := m.state[(i+mtM)%mtN] ^ (y >> 1)
		if y&1 != 0 {
			next ^= mtMatrixA
		}
		m.state[i] = next
	}
	m.index = 0
}

// Uint32 returns the next tempered 32-bit output.
func (m *MT19937) Uint32() uint32 {
	if m.index >= mtN {
		m.generate()
	}
	y := m.state[m.index]
	m.index++
	y ^= y >> 11
	y ^= (y << 7) & 0x9d2c5680
	y ^= (y << 15) & 0xefc60000
	y ^= y >> 18
	return y
}

// Uint64 concatenates two 32-bit outputs (high word first).
func (m *MT19937) Uint64() uint64 {
	hi := uint64(m.Uint32())
	lo := uint64(m.Uint32())
	return hi<<32 | lo
}

// Uint32n returns a uniform value in [0, n) using rejection sampling,
// so the result is exactly uniform. n must be positive.
func (m *MT19937) Uint32n(n uint32) uint32 {
	if n == 0 {
		panic("hashing: Uint32n with n == 0")
	}
	// Largest multiple of n that fits in 32 bits.
	limit := ^uint32(0) - ^uint32(0)%n
	for {
		v := m.Uint32()
		if v < limit {
			return v % n
		}
	}
}

// MT19937_64 is the 64-bit Mersenne Twister (mt19937-64).
type MT19937_64 struct {
	state [mt64N]uint64
	index int
}

const (
	mt64N         = 312
	mt64M         = 156
	mt64MatrixA   = 0xB5026F5AA96619E9
	mt64UpperMask = 0xFFFFFFFF80000000
	mt64LowerMask = 0x7FFFFFFF
)

// NewMT19937_64 returns a 64-bit generator initialised with seed.
func NewMT19937_64(seed uint64) *MT19937_64 {
	m := &MT19937_64{}
	m.Seed(seed)
	return m
}

// Seed re-initialises the generator state from seed.
func (m *MT19937_64) Seed(seed uint64) {
	m.state[0] = seed
	for i := uint64(1); i < mt64N; i++ {
		prev := m.state[i-1]
		m.state[i] = 6364136223846793005*(prev^(prev>>62)) + i
	}
	m.index = mt64N
}

func (m *MT19937_64) generate() {
	for i := 0; i < mt64N; i++ {
		y := (m.state[i] & mt64UpperMask) | (m.state[(i+1)%mt64N] & mt64LowerMask)
		next := m.state[(i+mt64M)%mt64N] ^ (y >> 1)
		if y&1 != 0 {
			next ^= mt64MatrixA
		}
		m.state[i] = next
	}
	m.index = 0
}

// Uint64 returns the next tempered 64-bit output.
func (m *MT19937_64) Uint64() uint64 {
	if m.index >= mt64N {
		m.generate()
	}
	y := m.state[m.index]
	m.index++
	y ^= (y >> 29) & 0x5555555555555555
	y ^= (y << 17) & 0x71D67FFFEDA60000
	y ^= (y << 37) & 0xFFF7EEE000000000
	y ^= y >> 43
	return y
}

// Uint64n returns a uniform value in [0, n) via rejection sampling.
func (m *MT19937_64) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("hashing: Uint64n with n == 0")
	}
	limit := ^uint64(0) - ^uint64(0)%n
	for {
		v := m.Uint64()
		if v < limit {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (m *MT19937_64) Float64() float64 {
	return float64(m.Uint64()>>11) / (1 << 53)
}
