package hashing

// SplitMix64 steps the SplitMix64 generator state and returns the next
// output. It is used to expand seeds into independent sub-seeds and as
// the finalisation mixer of the ideal hash model.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the SplitMix64 finaliser to x. It is a bijection on
// uint64 with strong avalanche behaviour.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SubSeeds expands one seed into n sub-seeds. Checkers use it to key the
// independent hash functions of their iterations.
func SubSeeds(seed uint64, n int) []uint64 {
	out := make([]uint64, n)
	s := seed
	for i := range out {
		out[i] = SplitMix64(&s)
	}
	return out
}
