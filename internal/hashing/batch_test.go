package hashing

import "testing"

// batchKeys exercises every width class the hashers branch on: zero,
// small 32-bit values, the 32/64-bit boundary, and full-width keys.
func batchKeys(n int, seed uint64) []uint64 {
	rng := NewMT19937_64(seed)
	keys := make([]uint64, n)
	for i := range keys {
		switch i % 4 {
		case 0:
			keys[i] = rng.Uint64() & 0xFFFFFFFF // 32-bit encoding path
		case 1:
			keys[i] = rng.Uint64() // full width
		case 2:
			keys[i] = uint64(i) // small / sequential
		default:
			keys[i] = 0xFFFFFFFF + rng.Uint64n(1<<20) // straddles the boundary
		}
	}
	keys[0] = 0
	keys[1] = 0xFFFFFFFF
	keys[2] = 0x100000000
	keys[3] = ^uint64(0)
	return keys
}

// TestHash64BatchMatchesScalar asserts that every family's batch path
// is bit-identical to element-wise Hash64 — the contract the checker
// hot loops rely on (every PE must compute the same residues).
func TestHash64BatchMatchesScalar(t *testing.T) {
	for _, fam := range []Family{FamilyCRC, FamilyTab, FamilyTab64, FamilyMix} {
		for _, seed := range []uint64{0, 1, 0xdeadbeef} {
			h := fam.New(seed)
			// Odd length exercises the unrolled loops' tail handling.
			keys := batchKeys(1021, seed+99)
			dst := make([]uint64, len(keys))
			h.Hash64Batch(dst, keys)
			for i, k := range keys {
				if want := h.Hash64(k); dst[i] != want {
					t.Fatalf("%s seed=%d key[%d]=%#x: batch %#x != scalar %#x",
						fam.Name, seed, i, k, dst[i], want)
				}
			}
		}
	}
}

// TestHash64BatchEmptyAndOversizedDst covers the slice-contract edges:
// empty batches and dst longer than keys (only len(keys) entries are
// written).
func TestHash64BatchEmptyAndOversizedDst(t *testing.T) {
	for _, fam := range []Family{FamilyCRC, FamilyTab, FamilyTab64, FamilyMix} {
		h := fam.New(7)
		h.Hash64Batch(nil, nil) // must not panic
		dst := []uint64{111, 222, 333}
		h.Hash64Batch(dst, []uint64{42})
		if dst[0] != h.Hash64(42) {
			t.Fatalf("%s: batch of one wrote %#x, want %#x", fam.Name, dst[0], h.Hash64(42))
		}
		if dst[1] != 222 || dst[2] != 333 {
			t.Fatalf("%s: batch wrote past len(keys): %v", fam.Name, dst)
		}
	}
}
