package hashing

import "fmt"

// Hasher is one concrete hash function drawn from a Family.
type Hasher interface {
	// Hash64 maps a 64-bit input to a hash value. Only the low Bits()
	// bits are significant; higher bits are zero for 32-bit families.
	Hash64(x uint64) uint64
	// Bits is the number of significant output bits (32 or 64).
	Bits() int
}

// Family is a keyed family of hash functions. Checker iterations draw
// independent members via New with distinct seeds.
type Family struct {
	// Name is the identifier used in the paper's plots (CRC, Tab, Tab64,
	// Mix).
	Name string
	// New returns the family member keyed by seed.
	New func(seed uint64) Hasher
	// Bits is the output width of members of this family.
	Bits int
}

// mixHasher is the ideal "random hash function" model of Section 2:
// a strong keyed mixer whose outputs we treat as uniform. It is also the
// cheapest family, so it doubles as the default for the framework's own
// hash partitioning.
type mixHasher struct {
	key uint64
}

func (m mixHasher) Hash64(x uint64) uint64 { return Mix64(x ^ m.key) }
func (m mixHasher) Bits() int              { return 64 }

// Families indexed by name. CRC: hardware-polynomial CRC-32C; Tab:
// byte-wise tabulation with 32-bit output; Tab64: tabulation with 64-bit
// output; Mix: ideal keyed mixer.
var (
	FamilyCRC = Family{
		Name: "CRC",
		New:  func(seed uint64) Hasher { return NewCRC32C(seed) },
		Bits: 32,
	}
	FamilyTab = Family{
		Name: "Tab",
		New:  func(seed uint64) Hasher { return NewTabulation32(seed) },
		Bits: 32,
	}
	FamilyTab64 = Family{
		Name: "Tab64",
		New:  func(seed uint64) Hasher { return NewTabulation64(seed) },
		Bits: 64,
	}
	FamilyMix = Family{
		Name: "Mix",
		New:  func(seed uint64) Hasher { return mixHasher{key: Mix64(seed)} },
		Bits: 64,
	}
)

// FamilyByName resolves the plot names used throughout the experiments.
func FamilyByName(name string) (Family, error) {
	switch name {
	case "CRC":
		return FamilyCRC, nil
	case "Tab":
		return FamilyTab, nil
	case "Tab64":
		return FamilyTab64, nil
	case "Mix":
		return FamilyMix, nil
	}
	return Family{}, fmt.Errorf("hashing: unknown hash family %q", name)
}
