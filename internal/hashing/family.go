package hashing

import "fmt"

// Hasher is one concrete hash function drawn from a Family.
type Hasher interface {
	// Hash64 maps a 64-bit input to a hash value. Only the low Bits()
	// bits are significant; higher bits are zero for 32-bit families.
	Hash64(x uint64) uint64
	// Hash64Batch hashes keys element-wise into dst (dst[i] =
	// Hash64(keys[i])); len(dst) must be >= len(keys). Implementations
	// specialise the inner loop — no per-element interface dispatch,
	// hoisted table pointers, unrolling — so the checker hot loops
	// consume blocks of keys at a fraction of the scalar cost.
	Hash64Batch(dst, keys []uint64)
	// Bits is the number of significant output bits (32 or 64).
	Bits() int
}

// Family is a keyed family of hash functions. Checker iterations draw
// independent members via New with distinct seeds.
type Family struct {
	// Name is the identifier used in the paper's plots (CRC, Tab, Tab64,
	// Mix).
	Name string
	// New returns the family member keyed by seed.
	New func(seed uint64) Hasher
	// Bits is the output width of members of this family.
	Bits int
}

// mixHasher is the ideal "random hash function" model of Section 2:
// a strong keyed mixer whose outputs we treat as uniform. It is also the
// cheapest family, so it doubles as the default for the framework's own
// hash partitioning.
type mixHasher struct {
	key uint64
}

func (m mixHasher) Hash64(x uint64) uint64 { return Mix64(x ^ m.key) }
func (m mixHasher) Bits() int              { return 64 }

// Hash64Batch mixes a block of keys. The loop is 4-way unrolled: each
// Mix64 is a short multiply/shift dependency chain, so independent
// lanes keep the multiplier busy.
func (m mixHasher) Hash64Batch(dst, keys []uint64) {
	k := m.key
	dst = dst[:len(keys)]
	i := 0
	for ; i+4 <= len(keys); i += 4 {
		dst[i] = Mix64(keys[i] ^ k)
		dst[i+1] = Mix64(keys[i+1] ^ k)
		dst[i+2] = Mix64(keys[i+2] ^ k)
		dst[i+3] = Mix64(keys[i+3] ^ k)
	}
	for ; i < len(keys); i++ {
		dst[i] = Mix64(keys[i] ^ k)
	}
}

// Families indexed by name. CRC: hardware-polynomial CRC-32C; Tab:
// byte-wise tabulation with 32-bit output; Tab64: tabulation with 64-bit
// output; Mix: ideal keyed mixer.
var (
	FamilyCRC = Family{
		Name: "CRC",
		New:  func(seed uint64) Hasher { return NewCRC32C(seed) },
		Bits: 32,
	}
	FamilyTab = Family{
		Name: "Tab",
		New:  func(seed uint64) Hasher { return NewTabulation32(seed) },
		Bits: 32,
	}
	FamilyTab64 = Family{
		Name: "Tab64",
		New:  func(seed uint64) Hasher { return NewTabulation64(seed) },
		Bits: 64,
	}
	FamilyMix = Family{
		Name: "Mix",
		New:  func(seed uint64) Hasher { return mixHasher{key: Mix64(seed)} },
		Bits: 64,
	}
)

// FamilyByName resolves the plot names used throughout the experiments.
func FamilyByName(name string) (Family, error) {
	switch name {
	case "CRC":
		return FamilyCRC, nil
	case "Tab":
		return FamilyTab, nil
	case "Tab64":
		return FamilyTab64, nil
	case "Mix":
		return FamilyMix, nil
	}
	return Family{}, fmt.Errorf("hashing: unknown hash family %q", name)
}
