package hashing

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestClMul64KnownValues(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{2, 3, 0, 6},                   // x * (x+1) = x^2 + x
		{3, 3, 0, 5},                   // (x+1)^2 = x^2+1 over GF(2)
		{1 << 63, 2, 1, 0},             // x^63 * x = x^64
		{1 << 63, 1 << 63, 1 << 62, 0}, // x^126
	}
	for _, c := range cases {
		hi, lo := ClMul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("ClMul64(%#x, %#x) = (%#x, %#x), want (%#x, %#x)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

// clMulRef is a bit-at-a-time reference carry-less multiply.
func clMulRef(a, b uint64) (hi, lo uint64) {
	for i := 0; i < 64; i++ {
		if b&(1<<i) != 0 {
			lo ^= a << i
			if i > 0 {
				hi ^= a >> (64 - i)
			}
		}
	}
	return hi, lo
}

func TestClMul64MatchesReference(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := ClMul64(a, b)
		rhi, rlo := clMulRef(a, b)
		return hi == rhi && lo == rlo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGF64MulProperties(t *testing.T) {
	comm := func(a, b uint64) bool { return GF64Mul(a, b) == GF64Mul(b, a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Fatalf("commutativity: %v", err)
	}
	ident := func(a uint64) bool { return GF64Mul(a, 1) == a }
	if err := quick.Check(ident, nil); err != nil {
		t.Fatalf("identity: %v", err)
	}
	zero := func(a uint64) bool { return GF64Mul(a, 0) == 0 }
	if err := quick.Check(zero, nil); err != nil {
		t.Fatalf("zero: %v", err)
	}
	distrib := func(a, b, c uint64) bool {
		return GF64Mul(a, b^c) == GF64Mul(a, b)^GF64Mul(a, c)
	}
	if err := quick.Check(distrib, nil); err != nil {
		t.Fatalf("distributivity: %v", err)
	}
	assoc := func(a, b, c uint64) bool {
		return GF64Mul(GF64Mul(a, b), c) == GF64Mul(a, GF64Mul(b, c))
	}
	if err := quick.Check(assoc, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("associativity: %v", err)
	}
}

func TestGF64NoZeroDivisors(t *testing.T) {
	// In a field, products of nonzero elements are nonzero. Sampled.
	rng := NewMT19937_64(11)
	for i := 0; i < 2000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		if a == 0 || b == 0 {
			continue
		}
		if GF64Mul(a, b) == 0 {
			t.Fatalf("zero divisor: %#x * %#x == 0", a, b)
		}
	}
}

func TestGF64PowFermat(t *testing.T) {
	// In GF(2^64), a^(2^64-1) == 1 for a != 0 (Lagrange). Spot-check via
	// a^(2^64) == a, i.e. pow(pow(a,2^32),2^32) == a using repeated
	// squaring on exponent 2^32 twice.
	rng := NewMT19937_64(5)
	for i := 0; i < 20; i++ {
		a := rng.Uint64() | 1
		x := a
		for j := 0; j < 64; j++ {
			x = GF64Mul(x, x)
		}
		if x != a {
			t.Fatalf("a^(2^64) != a for a=%#x", a)
		}
	}
}

func TestMod61(t *testing.T) {
	cases := map[uint64]uint64{
		0:              0,
		1:              1,
		Mersenne61:     0,
		Mersenne61 + 1: 1,
		2 * Mersenne61: 0,
		^uint64(0):     Mod61(^uint64(0)),
	}
	for in, want := range cases {
		big := new(big.Int).SetUint64(in)
		ref := big.Mod(big, bigM61()).Uint64()
		if Mod61(in) != ref {
			t.Errorf("Mod61(%d) = %d, want %d", in, Mod61(in), ref)
		}
		_ = want
	}
}

func bigM61() *big.Int { return new(big.Int).SetUint64(Mersenne61) }

func TestMulMod61MatchesBig(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= Mersenne61
		b %= Mersenne61
		got := MulMod61(a, b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, bigM61())
		return got == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubMod61(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= Mersenne61
		b %= Mersenne61
		s := AddMod61(a, b)
		if SubMod61(s, b) != a {
			return false
		}
		return s < Mersenne61
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
