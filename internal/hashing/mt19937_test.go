package hashing

import "testing"

// Reference outputs of the canonical C implementations seeded with 5489
// (the default seed of std::mt19937 / std::mt19937_64).
var mt32Known = []uint32{3499211612, 581869302, 3890346734, 3586334585, 545404204}

var mt64Known = []uint64{
	14514284786278117030,
	4620546740167642908,
	13109570281517897720,
	17462938647148434322,
	355488278567739596,
}

func TestMT19937KnownAnswer(t *testing.T) {
	m := NewMT19937(5489)
	for i, want := range mt32Known {
		if got := m.Uint32(); got != want {
			t.Fatalf("MT19937 output %d: got %d, want %d", i, got, want)
		}
	}
}

func TestMT19937_64KnownAnswer(t *testing.T) {
	m := NewMT19937_64(5489)
	for i, want := range mt64Known {
		if got := m.Uint64(); got != want {
			t.Fatalf("MT19937-64 output %d: got %d, want %d", i, got, want)
		}
	}
}

func TestMT19937Reseed(t *testing.T) {
	m := NewMT19937(12345)
	first := make([]uint32, 10)
	for i := range first {
		first[i] = m.Uint32()
	}
	m.Seed(12345)
	for i := range first {
		if got := m.Uint32(); got != first[i] {
			t.Fatalf("reseeded stream diverges at %d: got %d, want %d", i, got, first[i])
		}
	}
}

func TestMT19937DistinctSeedsDistinctStreams(t *testing.T) {
	a, b := NewMT19937(1), NewMT19937(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for different seeds collide on %d of 100 outputs", same)
	}
}

func TestUint32nBounds(t *testing.T) {
	m := NewMT19937(7)
	for _, n := range []uint32{1, 2, 3, 10, 1 << 20, 1<<31 + 3} {
		for i := 0; i < 200; i++ {
			if v := m.Uint32n(n); v >= n {
				t.Fatalf("Uint32n(%d) returned %d", n, v)
			}
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	m := NewMT19937_64(7)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 40, 1<<63 + 11} {
		for i := 0; i < 200; i++ {
			if v := m.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) returned %d", n, v)
			}
		}
	}
}

func TestUint64nUniformSmall(t *testing.T) {
	// Chi-square style sanity check: each residue of a small modulus
	// should appear with roughly equal frequency.
	m := NewMT19937_64(99)
	const n, trials = 8, 80000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[m.Uint64n(n)]++
	}
	want := trials / n
	for r, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("residue %d count %d deviates from expectation %d", r, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	m := NewMT19937_64(3)
	for i := 0; i < 1000; i++ {
		f := m.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestUint32nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Uint32n(0)")
		}
	}()
	NewMT19937(1).Uint32n(0)
}
