// Package hashing provides the hash-function substrate used by the
// checkers: CRC-32C, tabulation hashing (32- and 64-bit output), a keyed
// strong mixer standing in for the paper's "random hash function" model,
// the MT19937 and MT19937-64 Mersenne Twister generators the paper draws
// pseudo-random numbers from, carry-less GF(2^64) multiplication, modular
// arithmetic over the Mersenne prime 2^61-1, and prime search for the
// polynomial permutation checker (Lemma 5).
//
// All hash functions are keyed: a Family produces independent Hasher
// instances from seeds, so each checker iteration can draw a fresh
// function from the family. Families are registered by the names used in
// the paper's plots: "CRC", "Tab", "Tab64", and "Mix" (the ideal model).
//
// Every Hasher also provides Hash64Batch, a block form of Hash64 with a
// specialised loop per family (no per-element interface dispatch); the
// checker hot paths consume keys exclusively through it.
package hashing
