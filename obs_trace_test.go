package repro_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro"
	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/workload"
)

// chromeEvent mirrors the fields of one exported trace_event entry the
// assertions below care about.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int64   `json:"pid"`
	Tid  int64   `json:"tid"`
}

// TestChromeTraceShowsResolveComputeOverlap is the observability
// layer's acceptance test: a deferred pipeline with VerifyAsync at
// every stage boundary, run over a latency-wrapped mesh so the batched
// resolution has real wire time to hide behind, must export a Chrome
// trace in which a resolve span overlaps a stage span on the same rank
// — the overlap rendered as parallel lanes is the entire point of the
// span layer.
func TestChromeTraceShowsResolveComputeOverlap(t *testing.T) {
	const (
		p      = 3
		stages = 4
		elems  = 60_000
	)
	tracer := obs.NewTracer(p, obs.DefaultCapacity)
	pairs := workload.UniformPairs(elems*p, 1<<62, 1<<62, 0x0b5)

	inner := comm.NewMemNetwork(p)
	defer inner.Close()
	net := comm.NewLatencyNetwork(inner, 2*time.Millisecond)

	opts := repro.DefaultOptions()
	opts.Mode = repro.CheckDeferred
	opts.Tracer = tracer
	err := dist.RunNetwork(net, 42, func(w *dist.Worker) error {
		lo, hi := w.Rank()*elems, (w.Rank()+1)*elems
		local := pairs[lo:hi]
		ctx, err := repro.NewContext(w, opts)
		if err != nil {
			return err
		}
		for s := 0; s < stages; s++ {
			if err := ctx.AssertSum(local, local); err != nil {
				return err
			}
			// Launch the batched resolution and immediately start the
			// next stage's accumulation: the resolve span rides under
			// the following stage span.
			if err := ctx.VerifyAsync(); err != nil {
				return err
			}
		}
		return ctx.Verify()
	})
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}

	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var events []chromeEvent
	for _, raw := range doc.TraceEvents {
		var ev chromeEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatalf("event %s: %v", raw, err)
		}
		if ev.Ph == "X" {
			events = append(events, ev)
		}
	}

	kinds := map[string]int{}
	for _, ev := range events {
		kinds[ev.Cat]++
	}
	for _, want := range []string{"stage", "collective", "resolve", "recv-wait"} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %q span (kinds: %v)", want, kinds)
		}
	}

	// The acceptance criterion: at least one resolve span whose time
	// range intersects a stage span's on the same rank (pid), on the
	// sibling lane. Strict inequalities, so touching endpoints do not
	// count as overlap.
	overlaps := 0
	for _, res := range events {
		if res.Cat != "resolve" {
			continue
		}
		if res.Tid%2 == 0 {
			t.Errorf("resolve span on even lane %d: resolve must ride the odd sibling lane", res.Tid)
		}
		for _, st := range events {
			if st.Cat != "stage" || st.Pid != res.Pid {
				continue
			}
			if st.Ts < res.Ts+res.Dur && res.Ts < st.Ts+st.Dur {
				overlaps++
			}
		}
	}
	if overlaps == 0 {
		t.Fatalf("no resolve span overlaps a stage span on any rank: the deferred pipeline's verification did not ride under compute (%d events)", len(events))
	}
	if tracer.Dropped() != 0 {
		t.Errorf("tracer dropped %d spans at capacity %d", tracer.Dropped(), obs.DefaultCapacity)
	}
}

// TestGatherSpansMergesAllRanks runs a small traced pipeline and
// checks the collective span gather returns every rank's spans at
// rank 0 and nothing elsewhere.
func TestGatherSpansMergesAllRanks(t *testing.T) {
	const p = 4
	tracer := obs.NewTracer(p, obs.DefaultCapacity)
	opts := repro.DefaultOptions()
	opts.Mode = repro.CheckDeferred
	opts.Tracer = tracer

	gathered := make([][]obs.Span, p)
	err := repro.Run(p, 7, func(w *repro.Worker) error {
		ctx, err := repro.NewContext(w, opts)
		if err != nil {
			return err
		}
		pairs := []repro.Pair{{Key: 1, Value: uint64(w.Rank() + 1)}}
		if err := ctx.AssertSum(pairs, pairs); err != nil {
			return err
		}
		if err := ctx.Verify(); err != nil {
			return err
		}
		spans, err := dist.GatherSpans(w)
		if err != nil {
			return err
		}
		gathered[w.Rank()] = spans
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for r := 1; r < p; r++ {
		if gathered[r] != nil {
			t.Errorf("rank %d got %d gathered spans; only rank 0 should", r, len(gathered[r]))
		}
	}
	root := gathered[0]
	if len(root) == 0 {
		t.Fatal("rank 0 gathered no spans")
	}
	seen := map[int32]bool{}
	for i, s := range root {
		seen[s.Rank] = true
		if i > 0 && root[i-1].StartNs > s.StartNs {
			t.Fatalf("gathered spans not start-ordered at %d", i)
		}
	}
	for r := int32(0); r < p; r++ {
		if !seen[r] {
			t.Errorf("gather missing spans from rank %d", r)
		}
	}
}
