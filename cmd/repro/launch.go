package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/hashing"
	"repro/internal/obs"
)

// launchDigestDomain keys the per-rank pipeline digest so it cannot
// collide with any other Mix64 chain in the system.
const launchDigestDomain = 0x6c61756e63684467 // "launchDg"

// launchDigestPrefix tags the one line each rank prints for the
// spawning parent (or the operator) to collect.
const launchDigestPrefix = "LAUNCH-DIGEST"

// runLaunch drives a checked pipeline across OS processes. Three modes:
//
//	repro launch -p 4                          spawn: fork 4 ranks on
//	                                           loopback via a local
//	                                           rendezvous, then verify
//	                                           their verdicts are
//	                                           bit-identical to an
//	                                           in-process run
//	repro launch -rank 2 -p 4 -rendezvous A    join: become rank 2 of a
//	                                           run bootstrapped at A
//	repro launch -rank 1 -hosts h0:p,h1:p,...  join: static host list
//
// In join mode, -serve-rendezvous makes this process (typically rank 0)
// also host the rendezvous service at the -rendezvous address.
func runLaunch(args []string) error {
	fs := flag.NewFlagSet("launch", flag.ExitOnError)
	rank := fs.Int("rank", -1, "this process's rank; -1 (default) spawns the whole run as child processes")
	p := fs.Int("p", 4, "world size (with -hosts: must match the list length or be left at default)")
	hostsFlag := fs.String("hosts", "", "comma-separated static host list h0:p0,h1:p1,...; rank r binds entry r")
	rdv := fs.String("rendezvous", "", "rendezvous service address to register with")
	serveRdv := fs.Bool("serve-rendezvous", false, "host the rendezvous service at -rendezvous from this process (exactly one rank does this)")
	bind := fs.String("bind", "", "listen address in rendezvous mode (default loopback with an OS port)")
	advertise := fs.String("advertise", "", "host (or host:port) peers should dial instead of the bind address")
	topoFlag := fs.String("topology", string(comm.TopoHypercube), "connection topology: full, ring, hypercube, or none (fully lazy)")
	seed := fs.Uint64("seed", 42, "run seed; verdicts are a pure function of (p, seed, elements)")
	elements := fs.Int("elements", 4096, "pairs per PE in the checked pipeline")
	timeout := fs.Duration("timeout", 60*time.Second, "per-run communication deadline")
	setupTimeout := fs.Duration("setup-timeout", 0, "bootstrap deadline: rendezvous, dials, handshakes (0 = default)")
	verifyIdentical := fs.Bool("verify-identical", true, "spawn mode: rerun in-process over the mem transport and require bit-identical digests")
	traceOut := fs.String("trace", "",
		"gather every rank's spans over the collectives and write a Chrome trace at rank 0 (join mode: every rank must pass the same flag; spawn mode forwards it)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "p" {
			pSet = true
		}
	})
	topo, err := comm.ParseTopology(*topoFlag)
	if err != nil {
		return err
	}
	cfg := dist.Config{Topology: topo, Timeout: *timeout, SetupTimeout: *setupTimeout}
	if *rank < 0 {
		if *hostsFlag != "" || *rdv != "" {
			return fmt.Errorf("launch: -hosts/-rendezvous describe an existing run; joining one needs -rank")
		}
		return launchSpawn(cfg, *p, *seed, *elements, *topoFlag, *setupTimeout, *verifyIdentical, *traceOut)
	}
	lc := dist.LaunchConfig{
		Rank:       *rank,
		P:          *p,
		Rendezvous: *rdv,
		Bind:       *bind,
		Advertise:  *advertise,
		Config:     cfg,
	}
	if *hostsFlag != "" {
		hosts, err := dist.ParseHosts(*hostsFlag)
		if err != nil {
			return err
		}
		lc.Hosts = hosts
		if !pSet { // -p left at its default: the host list dictates p
			lc.P = 0
		}
	}
	if *serveRdv {
		if *rdv == "" {
			return fmt.Errorf("launch: -serve-rendezvous needs -rendezvous to name the address to host")
		}
		l, err := net.Listen("tcp", *rdv)
		if err != nil {
			return fmt.Errorf("launch: hosting rendezvous at %s: %w", *rdv, err)
		}
		go func() {
			if _, err := dist.ServeRendezvous(l, lc.P, *setupTimeout); err != nil {
				fmt.Fprintln(os.Stderr, "repro launch:", err)
			}
		}()
	}
	return launchJoin(lc, *seed, *elements, *traceOut)
}

// launchJoin is one rank's life: bootstrap into the world, run the
// checked pipeline, print the digest line, tear down. With traceOut,
// every rank records spans into its process-local tracer and the run
// ends with a span gather over the collectives — rank 0 writes the
// merged Chrome trace, which is the cross-process case GatherSpans
// exists for.
func launchJoin(lc dist.LaunchConfig, seed uint64, elements int, traceOut string) error {
	node, err := dist.Join(lc)
	if err != nil {
		return err
	}
	defer node.Close()
	var tracer *obs.Tracer
	if traceOut != "" {
		tracer = obs.NewTracer(node.Size(), obs.DefaultCapacity)
	}
	var digest uint64
	err = dist.RunLocal(node, lc.Rank, seed, func(w *dist.Worker) error {
		if tracer != nil {
			w.SetTracer(tracer)
		}
		d, perr := launchPipeline(w, elements)
		digest = d
		if perr != nil {
			return perr
		}
		if tracer != nil {
			spans, gerr := dist.GatherSpans(w)
			if gerr != nil {
				return gerr
			}
			if w.Rank() == 0 {
				return writeSpansFile(traceOut, spans)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s rank=%d p=%d seed=%d conns=%d digest=%016x verdict=ok\n",
		launchDigestPrefix, lc.Rank, node.Size(), seed, node.ConnsOpen(), digest)
	return nil
}

// launchSpawn forks p child ranks of this binary on loopback, collects
// their digest lines, and (by default) reruns the identical pipeline
// in-process over the mem transport to prove the cross-process verdicts
// are bit-identical.
func launchSpawn(cfg dist.Config, p int, seed uint64, elements int, topo string, setupTimeout time.Duration, verifyIdentical bool, traceOut string) error {
	if p < 1 {
		return fmt.Errorf("launch: need p >= 1, got %d", p)
	}
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("launch: locating own binary: %w", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	rdvAddr := l.Addr().String()
	rdvDone := make(chan error, 1)
	go func() {
		_, err := dist.ServeRendezvous(l, p, setupTimeout)
		rdvDone <- err
	}()

	fmt.Printf("launch: spawning %d ranks (topology %s, rendezvous %s)\n", p, topo, rdvAddr)
	cmds := make([]*exec.Cmd, p)
	outs := make([]bytes.Buffer, p)
	for r := 0; r < p; r++ {
		childArgs := []string{"launch",
			"-rank", strconv.Itoa(r),
			"-p", strconv.Itoa(p),
			"-rendezvous", rdvAddr,
			"-topology", topo,
			"-seed", strconv.FormatUint(seed, 10),
			"-elements", strconv.Itoa(elements),
			"-timeout", cfg.Timeout.String(),
			"-setup-timeout", setupTimeout.String(),
		}
		if traceOut != "" {
			// Every child records and joins the gather; rank 0's process
			// writes the merged file.
			childArgs = append(childArgs, "-trace", traceOut)
		}
		cmds[r] = exec.Command(exe, childArgs...)
		cmds[r].Stdout = &outs[r]
		cmds[r].Stderr = os.Stderr
		if err := cmds[r].Start(); err != nil {
			return fmt.Errorf("launch: starting rank %d: %w", r, err)
		}
	}
	var firstErr error
	for r := 0; r < p; r++ {
		if err := cmds[r].Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("launch: rank %d process: %w", r, err)
		}
	}
	if err := <-rdvDone; err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return firstErr
	}
	digests := make([]uint64, p)
	for r := 0; r < p; r++ {
		d, err := parseDigestLine(outs[r].String(), r, p)
		if err != nil {
			return err
		}
		digests[r] = d
		fmt.Print(digestLineOf(outs[r].String()))
	}
	if traceOut != "" {
		fmt.Printf("launch: rank 0 gathered every process's spans and wrote %s\n", traceOut)
	}
	if !verifyIdentical {
		fmt.Printf("launch: %d ranks completed with clean verdicts\n", p)
		return nil
	}
	// The reference run: same (p, seed, elements) as p goroutines over
	// the in-memory transport. Digest equality per rank is bit-identity
	// of every collected output and verdict.
	ref := make([]uint64, p)
	memCfg := dist.Config{Transport: dist.TransportMem}
	err = repro.RunConfig(memCfg, p, seed, func(w *repro.Worker) error {
		d, err := launchPipeline(w, elements)
		ref[w.Rank()] = d
		return err
	})
	if err != nil {
		return fmt.Errorf("launch: in-process reference run: %w", err)
	}
	for r := 0; r < p; r++ {
		if digests[r] != ref[r] {
			return fmt.Errorf("launch: rank %d digest %#016x differs from in-process reference %#016x — cross-process run is not bit-identical", r, digests[r], ref[r])
		}
	}
	fmt.Printf("launch: verdicts bit-identical across %d processes and the in-process reference (p=%d seed=%d)\n", p, p, seed)
	return nil
}

// launchPipeline is the deterministic checked pipeline every rank runs:
// a ReduceByKey over power-law-ish pairs and a Sort over a private
// sequence, checkers deferred and resolved in one batched round. The
// returned digest chains Mix64 over the common seed and every collected
// word, so two runs agree on the digest iff they agree on every output
// bit and every verdict.
func launchPipeline(w *repro.Worker, elements int) (uint64, error) {
	opts := repro.DefaultOptions()
	opts.Mode = repro.CheckDeferred
	ctx, err := repro.NewContext(w, opts)
	if err != nil {
		return 0, err
	}
	pairs := make([]repro.Pair, elements)
	for i := range pairs {
		pairs[i] = repro.Pair{Key: w.Rng.Uint64n(uint64(elements/4 + 1)), Value: w.Rng.Uint64n(1 << 20)}
	}
	seq := make([]uint64, elements)
	for i := range seq {
		seq[i] = w.Rng.Uint64()
	}
	reduced, err := ctx.Pairs(pairs).ReduceByKey(repro.SumFn).Collect()
	if err != nil {
		return 0, err
	}
	sorted, err := ctx.Seq(seq).Sort().Collect()
	if err != nil {
		return 0, err
	}
	if err := ctx.Verify(); err != nil {
		return 0, err
	}
	cs, err := w.CommonSeed()
	if err != nil {
		return 0, err
	}
	h := hashing.Mix64(cs ^ launchDigestDomain)
	h = hashing.Mix64(h ^ uint64(w.Rank()))
	for _, pr := range reduced {
		h = hashing.Mix64(h ^ pr.Key)
		h = hashing.Mix64(h ^ pr.Value)
	}
	for _, v := range sorted {
		h = hashing.Mix64(h ^ v)
	}
	return h, nil
}

// parseDigestLine extracts rank r's digest from its child's stdout.
func parseDigestLine(out string, r, p int) (uint64, error) {
	line := digestLineOf(out)
	if line == "" {
		return 0, fmt.Errorf("launch: rank %d printed no digest line; output:\n%s", r, out)
	}
	var gotRank, gotP int
	var gotSeed uint64
	var conns int64
	var digest uint64
	var verdict string
	_, err := fmt.Sscanf(strings.TrimSpace(line), launchDigestPrefix+" rank=%d p=%d seed=%d conns=%d digest=%x verdict=%s",
		&gotRank, &gotP, &gotSeed, &conns, &digest, &verdict)
	if err != nil {
		return 0, fmt.Errorf("launch: rank %d digest line %q: %w", r, line, err)
	}
	if gotRank != r || gotP != p || verdict != "ok" {
		return 0, fmt.Errorf("launch: rank %d reported rank=%d p=%d verdict=%q", r, gotRank, gotP, verdict)
	}
	return digest, nil
}

// digestLineOf returns the digest line from a child's output, if any.
func digestLineOf(out string) string {
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, launchDigestPrefix+" ") {
			return line + "\n"
		}
	}
	return ""
}
