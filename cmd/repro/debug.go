package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"

	"repro/internal/obs"
	"repro/internal/service"
)

// newDebugMux builds the introspection surface behind `serve
// -debug-addr`: pprof under /debug/pprof/, the unified metrics
// registry at /metrics (plain text, one "name value" per line), the
// recorded spans as a Chrome trace_event JSON download at /trace, and
// the pool's PoolStats as JSON at /stats.
func newDebugMux(reg *obs.Registry, tr *obs.Tracer, stats func() service.PoolStats) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := reg.Render(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="repro-trace.json"`)
		if err := tr.WriteChromeTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// serveDebug binds addr and serves mux in the background, returning
// the bound address (addr may carry port 0). The listener lives for
// the process; debug servers need no graceful teardown.
func serveDebug(addr string, mux *http.ServeMux) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debug listener %s: %w", addr, err)
	}
	go func() {
		if err := http.Serve(l, mux); err != nil {
			fmt.Fprintln(os.Stderr, "repro: debug server:", err)
		}
	}()
	return l.Addr().String(), nil
}

// writeTracerFile exports a tracer's recorded spans as a Chrome
// trace_event file (open in chrome://tracing or Perfetto).
func writeTracerFile(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote trace (%d rank rings, %d spans dropped) to %s\n", tr.Ranks(), tr.Dropped(), path)
	return nil
}

// writeSpansFile is writeTracerFile for an already-gathered span set
// (the cross-process launch path).
func writeSpansFile(path string, spans []obs.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote gathered trace (%d spans) to %s\n", len(spans), path)
	return nil
}
