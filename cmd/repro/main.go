// Command repro regenerates every table and figure of the paper
// "Communication Efficient Checking of Big Data Operations"
// (Hübschle-Schneider and Sanders) from this repository's
// implementation.
//
// Usage:
//
//	repro <experiment> [flags]
//
// Experiments: table1 table2 table3 table4 table5 table6 fig3 fig4 fig5
// permoverhead commvolume all. Flags (where applicable) scale the
// defaults up to paper scale, e.g.
//
//	repro fig3 -elements 50000 -max-runs 100000
//	repro fig4 -items 125000 -pes 32,64,128,256,512
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/params"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "table1":
		fmt.Print(exp.RenderTable1())
	case "table2":
		err = runTable2()
	case "table3":
		fmt.Print(exp.RenderTable3())
	case "table4":
		fmt.Print(exp.RenderTable4())
	case "table5":
		err = runTable5(args)
	case "table6":
		fmt.Print(exp.RenderTable6())
	case "fig3":
		err = runFig3(args)
	case "fig4":
		err = runFig4(args)
	case "fig5":
		err = runFig5(args)
	case "permoverhead":
		err = runPermOverhead(args)
	case "commvolume":
		err = runCommVolume(args)
	case "modeled":
		err = runModeled(args)
	case "bench":
		err = runBench(args)
	case "stream":
		err = runStream(args)
	case "serve":
		err = runServe(args)
	case "soak":
		err = runSoak(args)
	case "launch":
		err = runLaunch(args)
	case "all":
		err = runAll()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: repro <experiment> [flags]

experiments:
  table1        checker properties (paper Table 1)
  table2        optimal (d, rhat, #its) per message size (paper Table 2)
  table3        tested checker configurations (paper Table 3)
  table4        sum checker manipulators (paper Table 4)
  table5        sum checker local overhead, ns/element (paper Table 5)
  table6        permutation checker manipulators (paper Table 6)
  fig3          sum checker detection accuracy sweep (paper Fig. 3)
  fig4          weak scaling of the checked reduce pipeline (paper Fig. 4)
  fig5          permutation checker accuracy sweep (paper Fig. 5 / App. A)
  permoverhead  permutation checker local overhead (paper Sec. 7.2)
  commvolume    bottleneck communication volume audit (Sec. 1 claim)
  modeled       alpha-beta-model comm makespans up to p=4096 (Sec. 2 model)
  bench         local accumulation engine (scalar vs batch vs parallel),
                the TCP transport codec comparison (gob vs framed), the
                streaming throughput sweep, and the verification-policy
                makespan benchmark (eager vs deferred vs overlapped);
                -out bench.json writes the artifact, -baseline prev.json
                diffs against a committed baseline (warns on >10%)
  stream        streaming checked operations: chunked accumulate/merge/
                seal residue cost vs one-shot across chunk sizes
                (-chunk 65536 or -chunks 1024,8192,65536)
  serve         resident verification service: one persistent mesh
                serving synthetic concurrent jobs with live stats
                (-duration 10s -p 4 -concurrency 64 -transport mem)
  soak          soak-and-chaos harness over the service: manipulated
                claimed outputs plus transport bitflips and hard
                faults; exits nonzero if any corruption escapes, any
                clean job fails, or fault fallout leaks across jobs;
                -kill-rank N additionally crashes PE N on an elastic
                pool mid-flight and asserts detection, a single view
                change, and checked recovery bit-identical to a
                serial rerun
  launch        run a checked pipeline across OS processes: the default
                spawn mode forks -p ranks on loopback via a local
                rendezvous and proves their verdicts bit-identical to an
                in-process run; -rank joins an existing run by host list
                (-hosts) or rendezvous (-rendezvous, with
                -serve-rendezvous on one rank)
  all           everything above at default scale`)
}

func runTable2() error {
	rows, err := params.Table2()
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderTable2(rows))
	return nil
}

// transportFlags registers the shared -transport/-timeout/-topology
// flags and returns a resolver that fills a dist.Config from the
// parsed values.
func transportFlags(fs *flag.FlagSet, cfg *dist.Config) func() error {
	transport := fs.String("transport", string(cfg.Transport), "transport backend: mem, simnet, or tcp")
	topology := fs.String("topology", string(cfg.Topology),
		"TCP connection topology: full (default), ring, hypercube, or none (fully lazy); ignored by mem/simnet")
	fs.DurationVar(&cfg.Timeout, "timeout", cfg.Timeout,
		"per-run communication deadline (0 = none), e.g. 90s; does not interrupt local computation")
	return func() error {
		tr, err := dist.ParseTransport(*transport)
		if err != nil {
			return err
		}
		cfg.Transport = tr
		topo, err := comm.ParseTopology(*topology)
		if err != nil {
			return err
		}
		cfg.Topology = topo
		return nil
	}
}

func runFig3(args []string) error {
	fs := flag.NewFlagSet("fig3", flag.ExitOnError)
	opt := exp.DefaultAccuracySumOptions()
	fs.IntVar(&opt.Elements, "elements", opt.Elements, "input elements per trial (paper: 50000)")
	fs.IntVar(&opt.KeyUniverse, "universe", opt.KeyUniverse, "power-law key universe (paper: 1e6)")
	fs.IntVar(&opt.MinRuns, "min-runs", opt.MinRuns, "minimum trials per point")
	fs.IntVar(&opt.MaxRuns, "max-runs", opt.MaxRuns, "maximum trials per point (paper: 100000)")
	fs.Uint64Var(&opt.Seed, "seed", opt.Seed, "experiment seed")
	resolve := transportFlags(fs, &opt.Dist)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := resolve(); err != nil {
		return err
	}
	rows, err := exp.AccuracySum(opt)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderAccuracy("Fig. 3: sum aggregation checker accuracy (failure rate / delta)", rows))
	return nil
}

func runFig4(args []string) error {
	fs := flag.NewFlagSet("fig4", flag.ExitOnError)
	opt := exp.DefaultWeakScalingOptions()
	fs.IntVar(&opt.ItemsPerPE, "items", opt.ItemsPerPE, "items per PE (paper: 125000)")
	fs.IntVar(&opt.Repeats, "repeats", opt.Repeats, "timing repetitions")
	pes := fs.String("pes", "", "comma-separated PE counts (default 1..512 doubling)")
	fs.Uint64Var(&opt.Seed, "seed", opt.Seed, "experiment seed")
	fs.IntVar(&opt.Parallelism, "par", opt.Parallelism,
		"per-PE "+parFlagHelp+"; default serial — the PEs are goroutines sharing this process (pipelines outside this harness default to GOMAXPROCS)")
	deferred := fs.Bool("deferred", false, "resolve checkers in one batched round per pipeline (CheckDeferred)")
	resolve := transportFlags(fs, &opt.Dist)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := resolve(); err != nil {
		return err
	}
	if *deferred {
		opt.Mode = repro.CheckDeferred
	}
	if opt.Dist.Transport == dist.TransportTCP && *pes == "" {
		// The full TCP mesh needs p(p-1)/2 loopback connections; the
		// default sweep to 512 PEs would exhaust file descriptors. Cap it
		// unless the user picks PE counts explicitly — sparse topologies
		// (-topology hypercube) open O(p log p) and can go further.
		opt.PEs = []int{1, 2, 4, 8, 16}
		if opt.Dist.Topology != comm.TopoFullMesh && opt.Dist.Topology != "" {
			opt.PEs = []int{1, 2, 4, 8, 16, 32}
		}
	}
	if *pes != "" {
		parsed, err := parseInts(*pes)
		if err != nil {
			return err
		}
		opt.PEs = parsed
	}
	rows, err := exp.WeakScaling(opt)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderScaling(rows))
	return nil
}

func runFig5(args []string) error {
	fs := flag.NewFlagSet("fig5", flag.ExitOnError)
	opt := exp.DefaultAccuracyPermOptions()
	fs.IntVar(&opt.Elements, "elements", opt.Elements, "input elements per trial (paper: 1e6)")
	fs.IntVar(&opt.MinRuns, "min-runs", opt.MinRuns, "minimum trials per point")
	fs.IntVar(&opt.MaxRuns, "max-runs", opt.MaxRuns, "maximum trials per point (paper: 100000)")
	fs.Uint64Var(&opt.Seed, "seed", opt.Seed, "experiment seed")
	resolve := transportFlags(fs, &opt.Dist)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := resolve(); err != nil {
		return err
	}
	rows, err := exp.AccuracyPerm(opt)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderAccuracy("Fig. 5: permutation/sort checker accuracy (failure rate / delta)", rows))
	return nil
}

func runTable5(args []string) error {
	fs := flag.NewFlagSet("table5", flag.ExitOnError)
	opt := exp.DefaultOverheadOptions()
	fs.IntVar(&opt.Elements, "elements", opt.Elements, "pairs to process (paper: 1e6)")
	fs.IntVar(&opt.Repeats, "repeats", opt.Repeats, "repetitions, fastest wins")
	fs.IntVar(&opt.Parallelism, "par", opt.Parallelism,
		parFlagHelp+"; default serial, the paper-faithful single-core measurement")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Print(exp.RenderOverhead(exp.OverheadSum(opt)))
	return nil
}

// parFlagHelp gives every -par flag the same encoding — the exp
// harnesses': n > 1 fans out to n goroutines, anything below 2 stays
// serial. Timing experiments default to serial; pass e.g. -par $(nproc)
// for all cores.
const parFlagHelp = "accumulation goroutines: n > 1 = n workers, 0 or 1 = serial"

func runPermOverhead(args []string) error {
	fs := flag.NewFlagSet("permoverhead", flag.ExitOnError)
	opt := exp.DefaultOverheadOptions()
	fs.IntVar(&opt.Elements, "elements", opt.Elements, "elements to process (paper: 1e6)")
	fs.IntVar(&opt.Repeats, "repeats", opt.Repeats, "repetitions, fastest wins")
	fs.IntVar(&opt.Parallelism, "par", opt.Parallelism,
		parFlagHelp+"; default serial, the paper-faithful single-core measurement")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Print(exp.RenderPermOverhead(exp.OverheadPerm(opt)))
	return nil
}

func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	opt := exp.DefaultLocalBenchOptions()
	netOpt := exp.DefaultNetBenchOptions()
	ovOpt := exp.DefaultOverlapBenchOptions()
	fs.IntVar(&opt.Elements, "elements", opt.Elements, "elements per loop")
	fs.IntVar(&opt.Repeats, "repeats", opt.Repeats, "repetitions, fastest wins")
	fs.Uint64Var(&opt.Seed, "seed", opt.Seed, "workload seed")
	sumCfg := fs.String("sum", opt.Sum.Name(), "sum checker configuration (Table 3 syntax)")
	workers := fs.String("workers", "", "comma-separated parallel worker counts (default 2..GOMAXPROCS doubling)")
	withNet := fs.Bool("net", true, "include the TCP allreduce codec benchmark (gob baseline vs framed)")
	withStream := fs.Bool("stream", true, "include the streaming chunked-vs-oneshot throughput sweep")
	withOverlap := fs.Bool("overlap", true, "include the verification-policy makespan benchmark (eager vs deferred vs overlapped)")
	withService := fs.Bool("service", true, "include the service-pool job throughput benchmark (serial vs concurrent)")
	withRecovery := fs.Bool("recovery", true, "include the elastic-recovery latency benchmark (kill a PE, measure detect + recover)")
	withTopo := fs.Bool("topology", true, "include the topology benchmark (full-mesh vs hypercube setup latency and connection count)")
	topoOpt := exp.TopoBenchOptions{}
	topoPEs := fs.String("topology-pes", "", "comma-separated PE counts for the topology benchmark (default 4,8,16)")
	recOpt := exp.RecoveryBenchOptions{}
	fs.IntVar(&recOpt.Jobs, "recovery-jobs", recOpt.Jobs, "in-flight recoverable jobs per recovery episode (default 8)")
	fs.IntVar(&recOpt.Elements, "recovery-elements", recOpt.Elements, "elements per PE per recovery job (default 1000)")
	svcOpt := exp.ServiceBenchOptions{}
	fs.IntVar(&svcOpt.P, "service-pes", svcOpt.P, "PEs in the service benchmark mesh (default 4)")
	fs.IntVar(&svcOpt.Concurrency, "service-concurrency", svcOpt.Concurrency, "concurrent jobs in the service benchmark (default 64)")
	fs.IntVar(&svcOpt.Jobs, "service-jobs", svcOpt.Jobs, "jobs per measured service benchmark row (default 256)")
	fs.IntVar(&svcOpt.Elements, "service-elements", svcOpt.Elements, "elements per PE per service benchmark job (default 2000)")
	fs.IntVar(&netOpt.P, "net-pes", netOpt.P, "PEs in the TCP benchmark mesh")
	fs.IntVar(&netOpt.Words, "net-words", netOpt.Words, "words per PE per benchmarked allreduce")
	fs.IntVar(&netOpt.Rounds, "net-rounds", netOpt.Rounds, "allreduces per TCP benchmark repetition")
	fs.IntVar(&ovOpt.P, "overlap-pes", ovOpt.P, "PEs in the overlap benchmark mesh")
	fs.IntVar(&ovOpt.Stages, "overlap-stages", ovOpt.Stages, "checked pipeline stages in the overlap benchmark")
	fs.IntVar(&ovOpt.Elements, "overlap-elements", ovOpt.Elements, "pairs per PE per stage in the overlap benchmark")
	fs.DurationVar(&ovOpt.WireLatency, "overlap-latency", ovOpt.WireLatency,
		"emulated interconnect latency per message in the overlap benchmark (0 = raw loopback)")
	baseline := fs.String("baseline", "", "diff the fresh rows against this committed bench JSON (trajectory mode)")
	out := fs.String("out", "", "write the rows as JSON to this file")
	history := fs.String("history", "",
		"render the cross-PR trajectory of every committed artifact matching this glob (e.g. 'BENCH_*.json') and exit without benchmarking")
	traceOut := fs.String("trace", "", "write a Chrome trace of the overlap benchmark's spans to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *history != "" {
		entries, err := exp.LoadBenchHistory(*history)
		if err != nil {
			return err
		}
		fmt.Print(exp.RenderBenchHistory(entries))
		return nil
	}
	cfg, err := core.ParseSumConfig(*sumCfg)
	if err != nil {
		return err
	}
	opt.Sum = cfg
	if *workers != "" {
		parsed, err := parseInts(*workers)
		if err != nil {
			return err
		}
		opt.Workers = parsed
	}
	rows, err := exp.LocalBench(opt)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderLocalBench(rows))
	var netRows []exp.NetBenchRow
	if *withNet {
		netOpt.Seed = opt.Seed
		netRows, err = exp.NetBench(netOpt)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(exp.RenderNetBench(netRows))
	}
	var streamRows []exp.StreamBenchRow
	if *withStream {
		streamOpt := exp.DefaultStreamBenchOptions()
		streamOpt.Elements = opt.Elements
		streamOpt.Repeats = opt.Repeats
		streamOpt.Seed = opt.Seed
		streamOpt.Sum = opt.Sum
		streamRows, err = exp.StreamBench(streamOpt)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(exp.RenderStreamBench(streamRows))
	}
	var overlapRows []exp.OverlapBenchRow
	if *withOverlap {
		// Repeats stay at the overlap default: single-machine makespans
		// are noisy and the mode comparison needs best-of-N to converge.
		ovOpt.Seed = opt.Seed
		ovOpt.Sum = exp.DefaultOverlapBenchOptions().Sum // deliberately large table; -sum tunes the local bench
		if *traceOut != "" {
			ovOpt.Tracer = obs.NewTracer(ovOpt.P, obs.DefaultCapacity)
		}
		overlapRows, err = exp.OverlapBench(ovOpt)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(exp.RenderOverlapBench(overlapRows))
		if *traceOut != "" {
			if err := writeTracerFile(*traceOut, ovOpt.Tracer); err != nil {
				return err
			}
		}
	}
	var svcRows []exp.ServiceBenchRow
	if *withService {
		svcOpt.Seed = opt.Seed
		svcRows, err = exp.RunServiceBench(svcOpt)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(exp.RenderServiceBench(svcRows))
	}
	var recRows []exp.RecoveryBenchRow
	if *withRecovery {
		recOpt.Seed = opt.Seed
		recRows, err = exp.RunRecoveryBench(recOpt)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(exp.RenderRecoveryBench(recRows))
	}
	var topoRows []exp.TopoBenchRow
	if *withTopo {
		topoOpt.Seed = opt.Seed
		if *topoPEs != "" {
			parsed, err := parseInts(*topoPEs)
			if err != nil {
				return err
			}
			topoOpt.PEs = parsed
		}
		topoRows, err = exp.TopoBench(topoOpt)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(exp.RenderTopoBench(topoRows))
	}
	artifact := exp.BenchArtifact{Local: rows, Net: netRows, Stream: streamRows, Overlap: overlapRows, Service: svcRows, Recovery: recRows, Topology: topoRows}
	if *baseline != "" {
		base, err := exp.ReadBenchArtifact(*baseline)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(exp.RenderBenchDiff(exp.DiffBench(base, artifact)))
	}
	if *out != "" {
		blob, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d local, %d net, %d stream, %d overlap, %d service, %d recovery, and %d topology rows to %s\n",
			len(rows), len(netRows), len(streamRows), len(overlapRows), len(svcRows), len(recRows), len(topoRows), *out)
	}
	return nil
}

func runStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	opt := exp.DefaultStreamBenchOptions()
	fs.IntVar(&opt.Elements, "elements", opt.Elements, "elements per streamed side")
	fs.IntVar(&opt.Repeats, "repeats", opt.Repeats, "repetitions, fastest wins")
	fs.Uint64Var(&opt.Seed, "seed", opt.Seed, "workload seed")
	fs.IntVar(&opt.Parallelism, "par", opt.Parallelism,
		parFlagHelp+"; chunks below the 8192-element fan-out threshold stay serial regardless")
	chunk := fs.Int("chunk", 0, "single resident chunk size to measure (overrides -chunks)")
	chunks := fs.String("chunks", "", "comma-separated resident chunk sizes (default 1024,8192,65536)")
	sumCfg := fs.String("sum", opt.Sum.Name(), "sum checker configuration (Table 3 syntax)")
	out := fs.String("out", "", "write the rows as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := core.ParseSumConfig(*sumCfg)
	if err != nil {
		return err
	}
	opt.Sum = cfg
	if *chunks != "" {
		parsed, err := parseInts(*chunks)
		if err != nil {
			return err
		}
		opt.Chunks = parsed
	}
	if *chunk > 0 {
		opt.Chunks = []int{*chunk}
	}
	rows, err := exp.StreamBench(opt)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderStreamBench(rows))
	if *out != "" {
		blob, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d stream rows to %s\n", len(rows), *out)
	}
	return nil
}

func runCommVolume(args []string) error {
	fs := flag.NewFlagSet("commvolume", flag.ExitOnError)
	opt := exp.DefaultCommVolumeOptions()
	fs.IntVar(&opt.P, "p", opt.P, "number of PEs")
	ns := fs.String("ns", "", "comma-separated input sizes")
	resolve := transportFlags(fs, &opt.Dist)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := resolve(); err != nil {
		return err
	}
	if *ns != "" {
		parsed, err := parseInts(*ns)
		if err != nil {
			return err
		}
		opt.Ns = parsed
	}
	rows, err := exp.CommVolume(opt)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderVolume(rows))
	return nil
}

func runModeled(args []string) error {
	fs := flag.NewFlagSet("modeled", flag.ExitOnError)
	opt := exp.DefaultModeledScalingOptions()
	fs.IntVar(&opt.ItemsPerPE, "items", opt.ItemsPerPE, "items per PE")
	fs.Float64Var(&opt.AlphaNs, "alpha", opt.AlphaNs, "startup latency in ns")
	fs.Float64Var(&opt.BetaNsPerB, "beta", opt.BetaNsPerB, "per-byte time in ns")
	pes := fs.String("pes", "", "comma-separated PE counts (default 32..4096 doubling)")
	opt.Dist.Transport = dist.TransportSim
	resolve := transportFlags(fs, &opt.Dist)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := resolve(); err != nil {
		return err
	}
	if *pes != "" {
		parsed, err := parseInts(*pes)
		if err != nil {
			return err
		}
		opt.PEs = parsed
	}
	rows, err := exp.ModeledScaling(opt)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderModeled(rows))
	return nil
}

func runAll() error {
	fmt.Print(exp.RenderTable1())
	fmt.Println()
	if err := runTable2(); err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(exp.RenderTable3())
	fmt.Println()
	fmt.Print(exp.RenderTable4())
	fmt.Println()
	fmt.Print(exp.RenderTable6())
	fmt.Println()
	if err := runTable5(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runPermOverhead(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runCommVolume(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runModeled(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runBench(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runFig3(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runFig5(nil); err != nil {
		return err
	}
	fmt.Println()
	return runFig4(nil)
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
