package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro"
	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/service"
)

// runServe brings up a resident verification pool and drives synthetic
// open-loop traffic over it until the duration elapses (or SIGINT),
// printing service-level stats once a second — the long-lived service
// shape of the paper's always-on checkers, observable from a terminal.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	p := fs.Int("p", 4, "PEs in the resident mesh")
	concurrency := fs.Int("concurrency", 64, "in-flight job bound")
	elements := fs.Int("elements", 2000, "elements per PE per job")
	seed := fs.Uint64("seed", 42, "pool seed")
	duration := fs.Duration("duration", 10*time.Second, "how long to serve (0 = until interrupt)")
	debugAddr := fs.String("debug-addr", "",
		"serve live introspection at this address: /metrics, /trace, /stats, /debug/pprof/")
	traceOut := fs.String("trace", "", "write a Chrome trace of the run's spans to this file on exit")
	var cfg dist.Config
	resolve := transportFlags(fs, &cfg)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := resolve(); err != nil {
		return err
	}

	var tracer *obs.Tracer
	if *debugAddr != "" || *traceOut != "" {
		tracer = obs.NewTracer(*p, obs.DefaultCapacity)
	}
	pool, err := service.New(service.Options{
		P:             *p,
		Seed:          *seed,
		Dist:          cfg,
		MaxConcurrent: *concurrency,
		JobTimeout:    2 * time.Minute,
		Tracer:        tracer,
	})
	if err != nil {
		return err
	}
	defer pool.Close()
	if *debugAddr != "" {
		bound, err := serveDebug(*debugAddr, newDebugMux(pool.Registry(), tracer, pool.Stats))
		if err != nil {
			return err
		}
		fmt.Printf("debug server: http://%s/ (metrics, trace, stats, pprof)\n", bound)
	}
	fmt.Printf("serving: %d PEs over %s, up to %d concurrent jobs (interrupt to stop)\n",
		pool.Size(), transportName(cfg), *concurrency)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	defer signal.Stop(stop)
	var deadline <-chan time.Time
	if *duration > 0 {
		deadline = time.After(*duration)
	}
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()

	gen := exp.NewServeTraffic(*p, *elements, *seed)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-deadline:
				return
			default:
			}
			if err := gen.SubmitOne(pool, i); err != nil {
				if err != service.ErrPoolClosed {
					fmt.Fprintln(os.Stderr, "serve: submit:", err)
				}
				return
			}
		}
	}()

	for {
		select {
		case <-done:
			printStats(pool.Stats())
			if *traceOut != "" {
				return writeTracerFile(*traceOut, tracer)
			}
			return nil
		case <-ticker.C:
			printStats(pool.Stats())
		}
	}
}

func printStats(s service.PoolStats) {
	fmt.Printf("jobs: %d done (%d pass, %d reject, %d error), %d in flight (hw %d), %.0f jobs/s, p50 %.2fms, p99 %.2fms\n",
		s.Completed, s.Passed, s.Rejected, s.Errored, s.InFlight, s.HighWater,
		s.JobsPerSec, float64(s.P50Ns)/1e6, float64(s.P99Ns)/1e6)
}

func transportName(cfg dist.Config) string {
	if cfg.Transport == "" {
		return string(dist.TransportMem)
	}
	return string(cfg.Transport)
}

// runSoak runs the soak-and-chaos harness: mixed checked traffic with
// manipulated claimed outputs, then transport bitflips and hard
// receive faults, verifying every injected corruption is caught and
// every fault stays contained to the job that absorbed it. Exits
// nonzero when the run's invariants do not hold.
func runSoak(args []string) error {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	var opt exp.SoakOptions
	fs.IntVar(&opt.P, "p", 0, "PEs in the resident mesh (default 4)")
	fs.IntVar(&opt.Concurrency, "concurrency", 0, "in-flight job bound (default 64)")
	fs.IntVar(&opt.Jobs, "jobs", 0, "phase-A traffic jobs (default 512)")
	fs.IntVar(&opt.Elements, "elements", 0, "elements per PE per job (default 2000)")
	fs.IntVar(&opt.CorruptEvery, "corrupt-every", 0, "corrupt every n-th corruptible job (default 3, <0 disables)")
	fs.IntVar(&opt.Flips, "flips", 0, "transport bitflip episodes (default 4, <0 disables)")
	fs.IntVar(&opt.Faults, "faults", 0, "hard receive-fault episodes (default 4, <0 disables)")
	fs.IntVar(&opt.KillRank, "kill-rank", 0,
		"phase C: crash this rank on an elastic pool mid-flight and assert checked recovery (0 disables; rank 0 unsupported)")
	fs.Uint64Var(&opt.Seed, "seed", 0, "soak seed")
	eager := fs.Bool("eager", false, "run jobs in CheckEager mode instead of CheckDeferred")
	verbose := fs.Bool("v", false, "log escapes, false alarms, and chaos attribution")
	out := fs.String("out", "", "write the SoakResult as JSON to this file")
	traceOut := fs.String("trace", "", "write a Chrome trace of the soak's spans to this file")
	resolve := transportFlags(fs, &opt.Dist)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := resolve(); err != nil {
		return err
	}
	if *traceOut != "" {
		p := opt.P
		if p == 0 {
			p = 4 // SoakOptions.fill default
		}
		opt.Tracer = obs.NewTracer(p, obs.DefaultCapacity)
	}
	if *eager {
		// fill() maps the CheckEager zero value to CheckDeferred, so
		// eager mode rides the explicit flag. Detection works either
		// way: an eager assertion rejects inline, a deferred one at the
		// job's Verify.
		opt.Mode = repro.CheckEager
	}
	if *verbose {
		opt.Verbose = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	res, err := exp.Soak(opt)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderSoak(res))
	if *out != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote soak result to %s\n", *out)
	}
	if *traceOut != "" {
		if werr := writeTracerFile(*traceOut, opt.Tracer); werr != nil {
			return werr
		}
	}
	if !res.OK {
		msg := fmt.Sprintf("soak failed: %d escapes, %d false alarms, %d/%d flips contained, %d/%d faults contained, high-water %d",
			res.Escapes, res.FalseAlarms, res.FlipContained, res.Flips, res.FaultContained, res.Faults, res.HighWater)
		if ep := res.Recovery; ep != nil && !ep.OK {
			msg += fmt.Sprintf("; recovery episode violated its contract (detected=%v, %d view changes, %d/%d recovered, %d/%d verdicts matched serial, %d wrong, %d unattributed, %d/%d post-epoch passed)",
				ep.Detected, ep.ViewChanges, ep.Recovered, ep.InFlight,
				ep.VerdictMatch, ep.VerdictTotal, ep.WrongVerdict, ep.Unattributed, ep.PostPassed, ep.PostJobs)
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}
