package main

import (
	"net"
	"strings"
	"testing"

	"repro"
	"repro/internal/dist"
)

// TestLaunchPipelineDeterministic pins the property spawn mode's
// bit-identity check rests on: the digest is a pure function of
// (p, seed, elements, rank), stable across reruns.
func TestLaunchPipelineDeterministic(t *testing.T) {
	const p, seed, elements = 3, 1234, 600
	run := func() ([]uint64, error) {
		digests := make([]uint64, p)
		err := repro.Run(p, seed, func(w *repro.Worker) error {
			d, err := launchPipeline(w, elements)
			digests[w.Rank()] = d
			return err
		})
		return digests, err
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		if a[r] != b[r] {
			t.Fatalf("rank %d digest changed across reruns: %#x vs %#x", r, a[r], b[r])
		}
		if a[r] == 0 {
			t.Fatalf("rank %d digest is zero", r)
		}
	}
	// Distinct ranks hold distinct shards, so equal digests would mean
	// the digest ignores the data.
	if a[0] == a[1] {
		t.Fatal("ranks 0 and 1 produced identical digests")
	}
}

// TestParseDigestLine covers the parent's side of the child protocol.
func TestParseDigestLine(t *testing.T) {
	out := "launch: noise\nLAUNCH-DIGEST rank=2 p=4 seed=42 conns=3 digest=00deadbeef015678 verdict=ok\ntrailing\n"
	d, err := parseDigestLine(out, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0x00deadbeef015678 {
		t.Fatalf("digest = %#x", d)
	}
	if _, err := parseDigestLine(out, 1, 4); err == nil {
		t.Fatal("accepted a digest line for the wrong rank")
	}
	if _, err := parseDigestLine("no digest here\n", 0, 4); err == nil {
		t.Fatal("accepted output without a digest line")
	}
	bad := strings.Replace(out, "verdict=ok", "verdict=corrupt", 1)
	if _, err := parseDigestLine(bad, 2, 4); err == nil {
		t.Fatal("accepted a non-ok verdict")
	}
}

// TestLaunchJoinDigestLine runs launchJoin end to end for a 2-rank
// world inside this process (two TCPNodes over a rendezvous), checking
// the join path the spawn-mode children execute.
func TestLaunchJoinDigestLine(t *testing.T) {
	addr, done := startTestRendezvous(t, 2)
	errs := make(chan error, 1)
	go func() {
		errs <- launchJoin(dist.LaunchConfig{Rank: 1, P: 2, Rendezvous: addr}, 7, 300, "")
	}()
	if err := launchJoin(dist.LaunchConfig{Rank: 0, P: 2, Rendezvous: addr}, 7, 300, ""); err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func startTestRendezvous(t *testing.T, p int) (string, chan error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := dist.ServeRendezvous(l, p, 0)
		done <- err
	}()
	return l.Addr().String(), done
}
