package repro

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/stream"
)

// CheckMode selects when the checkers of a Context's operations resolve
// their collective rounds.
type CheckMode int

const (
	// CheckEager resolves every operation's checker inline, immediately
	// after the operation: k chained operations pay k serialized
	// verification rounds. This is the default and matches the behavior
	// of the deprecated XxxChecked wrappers.
	CheckEager CheckMode = iota
	// CheckDeferred runs only the checkers' local accumulation phase
	// per operation and batches all pending collective rounds into a
	// single all-reduction at Context.Verify — k chained operations
	// resolve in ~1 round, and the verdict reports which stage failed.
	CheckDeferred
	// CheckOff skips all checker work (no accumulation, no
	// communication) for baseline timing.
	CheckOff
)

// String names the mode for stats output.
func (m CheckMode) String() string {
	switch m {
	case CheckEager:
		return "eager"
	case CheckDeferred:
		return "deferred"
	case CheckOff:
		return "off"
	}
	return fmt.Sprintf("CheckMode(%d)", int(m))
}

// Verdict is the outcome of one stage's checker.
type Verdict int

const (
	// VerdictPending: the stage's checker state awaits Context.Verify.
	VerdictPending Verdict = iota
	// VerdictPass: the checker accepted the stage's result.
	VerdictPass
	// VerdictFail: the checker rejected the stage's result.
	VerdictFail
	// VerdictSkipped: checking was disabled (CheckOff).
	VerdictSkipped
	// VerdictError: the stage's operation or checker resolution failed
	// with a communication error before a verdict could be reached.
	VerdictError
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictPending:
		return "pending"
	case VerdictPass:
		return "pass"
	case VerdictFail:
		return "fail"
	case VerdictSkipped:
		return "skipped"
	case VerdictError:
		return "error"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// CheckStats instruments one pipeline stage on this PE: data volumes,
// communication attributable to the operation versus its checker, wall
// times, and the checker's verdict. Retrieve the entries with
// Context.Stats; experiment harnesses use them instead of hand-rolled
// network metering.
type CheckStats struct {
	// Stage is the unique stage label, e.g. "ReduceByKey#0".
	Stage string
	// Op is the operation name, e.g. "ReduceByKey".
	Op string
	// ElementsIn / ElementsOut count this PE's local input and output
	// records of the operation.
	ElementsIn  int
	ElementsOut int
	// OpBytes is how many bytes this PE sent while running the
	// operation itself.
	OpBytes int64
	// OpNs is the operation's wall time on this PE in nanoseconds.
	OpNs int64
	// CheckerBytes is what this PE measurably sent on this stage's
	// checker: the inline resolution in eager mode, plus any
	// checker-side preparation (e.g. the zip checker's offset prefix
	// sum) in every checking mode. A deferred stage's share of the
	// batched Verify traffic is not included — it lives, measured once,
	// in the batch's VerifySummary. Zero under CheckOff.
	CheckerBytes int64
	// CheckerMsgs counts messages behind CheckerBytes.
	CheckerMsgs int64
	// CheckerRounds counts collective operations behind CheckerBytes
	// (deferred stages share the rounds reported in their
	// VerifySummary).
	CheckerRounds int
	// BatchWords is how many 64-bit words (checker state plus flag)
	// this stage contributed to its deferred Verify batch; zero in
	// eager and off modes.
	BatchWords int
	// CheckNs is the checker's wall time on this PE: local accumulation
	// plus, in eager mode, the inline resolution.
	CheckNs int64
	// Chunks counts the source chunks a streaming stage consumed on
	// this PE, input and output sides together; zero for one-shot
	// stages.
	Chunks int
	// PeakResident is the largest single chunk, in elements, that was
	// resident at once during a streaming stage — the stage's memory
	// high-water mark; zero for one-shot stages.
	PeakResident int
	// Verdict is the checker's outcome for this stage.
	Verdict Verdict
}

// VerifySummary instruments one batched Context.Verify call in deferred
// mode.
type VerifySummary struct {
	// Stages is how many pipeline stages the batch resolved.
	Stages int
	// Words is the batched all-reduction payload in 64-bit words.
	Words int
	// Bytes / Msgs are what this PE sent during the batched resolution.
	Bytes int64
	Msgs  int64
	// Rounds counts collective operations the batch started
	// (independent of Stages — that is the point of deferral).
	Rounds int
	// WallNs is the batch's wall time on this PE.
	WallNs int64
	// Failed lists the stage labels whose checkers rejected.
	Failed []string
}

// StageError reports that a specific pipeline stage's checker rejected
// the stage's result. It unwraps to ErrCheckFailed.
type StageError struct {
	// Stage is the unique stage label, e.g. "ReduceByKey#2".
	Stage string
	// Op is the operation name.
	Op string
}

// Error describes the failed stage.
func (e *StageError) Error() string {
	return fmt.Sprintf("repro: stage %s: checker rejected the operation result", e.Stage)
}

// Unwrap ties StageError into the ErrCheckFailed sentinel.
func (e *StageError) Unwrap() error { return ErrCheckFailed }

// Context is the execution context of a checked pipeline on one PE: it
// carries the checker Options, the run's shared partitioner, the
// CheckMode, and a stats sink. Create one per Worker with NewContext,
// build pipelines from Pairs and Seq, and — in CheckDeferred mode —
// resolve all pending checkers with Verify.
//
// A Context is owned by its PE goroutine and must not be shared. Like
// all SPMD code, every PE must build the same pipeline; verdicts are
// identical on all PEs.
//
// Errors are sticky: after an operation fails (its checker rejected, or
// communication broke), subsequent operations on the Context no-op and
// terminal methods return the first error. Verdicts are replicated, so
// every PE stops at the same stage.
type Context struct {
	w    *Worker
	opts Options
	mode CheckMode
	pt   ops.Partitioner
	seed uint64
	par  core.ParallelAccumulator

	pending     []pendingCheck
	outstanding *asyncRound
	stats       []CheckStats
	summaries   []VerifySummary
	err         error
}

// asyncRound is a batched resolution launched by VerifyAsync and not
// yet applied: the stages it covers, the summary skeleton (Stages and
// Words filled at launch, traffic and wall time at completion), and
// the in-flight collective phase riding a dedicated sub-communicator.
// At most one round is outstanding per Context.
type asyncRound struct {
	pending []pendingCheck
	sum     VerifySummary
	res     *core.PendingVerdicts
}

// pendingCheck links a deferred stage's checker states to its stats
// entry (most stages register one state; Join registers one per
// relation).
type pendingCheck struct {
	states []core.CheckState
	stats  int
}

// NewContext builds a pipeline context for this Worker. It derives the
// run-wide checker seed and shared partitioner, so like any collective
// the first NewContext must happen at the same point of every PE's
// program. opts.Mode selects the check mode. Checker configurations
// are validated by the stages that use them, so an Options that only
// fills the configs its operations need keeps working.
func NewContext(w *Worker, opts Options) (*Context, error) {
	if opts.Tracer != nil {
		w.SetTracer(opts.Tracer)
	}
	seed, err := w.CommonSeed()
	if err != nil {
		return nil, err
	}
	return &Context{
		w:    w,
		opts: opts,
		mode: opts.Mode,
		pt:   ops.NewPartitioner(seed, w.Size()),
		seed: seed,
		par:  core.NewParallelAccumulator(opts.Parallelism),
	}, nil
}

// Worker returns the Worker this Context runs on.
func (c *Context) Worker() *Worker { return c.w }

// Mode returns the Context's check mode.
func (c *Context) Mode() CheckMode { return c.mode }

// Err returns the Context's sticky error: the first checker rejection
// or communication failure, or nil.
func (c *Context) Err() error { return c.err }

// Pending returns how many stages await Verify.
func (c *Context) Pending() int { return len(c.pending) }

// Outstanding reports whether a VerifyAsync round is in flight (its
// stages' verdicts arrive at the next VerifyAsync or Verify call).
func (c *Context) Outstanding() bool { return c.outstanding != nil }

// Stats returns a copy of the per-stage instrumentation recorded so
// far, in pipeline order.
func (c *Context) Stats() []CheckStats {
	out := make([]CheckStats, len(c.stats))
	copy(out, c.stats)
	return out
}

// VerifySummaries returns a copy of the batched-verification summaries
// recorded by Verify calls in deferred mode.
func (c *Context) VerifySummaries() []VerifySummary {
	out := make([]VerifySummary, len(c.summaries))
	copy(out, c.summaries)
	return out
}

// TotalCheckerBytes sums the checker communication this PE actually
// paid: the per-stage measured bytes plus the measured bytes of every
// batched Verify. Nothing is double-counted — deferred stages' batch
// contributions are only ever metered inside their VerifySummary.
func (c *Context) TotalCheckerBytes() int64 {
	var total int64
	for _, s := range c.stats {
		total += s.CheckerBytes
	}
	for _, s := range c.summaries {
		total += s.Bytes
	}
	return total
}

// commSnapshot reads this PE's sent-traffic counters and collective
// operation count from the Context's communicator. Metering is
// per-communicator, not per-endpoint: when many jobs share one
// endpoint on a resident mesh, each Context's deltas cover its own
// pipeline's traffic and nothing else.
func (c *Context) commSnapshot() (bytes, msgs int64, rounds int) {
	return c.w.Coll.BytesSent(), c.w.Coll.MsgsSent(), c.w.Coll.OpsStarted()
}

// fail records err as the Context's sticky error.
func (c *Context) fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return c.err
}

// runStage executes one pipeline stage: the operation via exec (which
// returns this PE's output record count), then the checker per the
// mode. mkState builds the checker's local-phase states from the stage
// label; it must not communicate. A nil mkState marks an unchecked
// stage.
func (c *Context) runStage(op string, elemsIn int, exec func() (int, error), mkState func(label string) []core.CheckState) error {
	return c.runStagePrep(op, elemsIn, exec, nil, mkState)
}

// runStagePrep is runStage with an optional checker preparation step:
// checkPrep runs after the operation and may communicate (e.g. the zip
// checker's global-offset prefix sum); its traffic and time are charged
// to the checker, and it is skipped entirely under CheckOff.
func (c *Context) runStagePrep(op string, elemsIn int, exec func() (int, error), checkPrep func() error, mkState func(label string) []core.CheckState) error {
	if c.err != nil {
		return c.err
	}
	label := fmt.Sprintf("%s#%d", op, len(c.stats))
	st := CheckStats{Stage: label, Op: op, ElementsIn: elemsIn, Verdict: VerdictSkipped}
	span := c.w.Span(obs.KindStage, label)
	defer span.End()

	b0, _, _ := c.commSnapshot()
	t0 := time.Now()
	elemsOut, err := exec()
	st.OpNs = time.Since(t0).Nanoseconds()
	b1, _, _ := c.commSnapshot()
	st.OpBytes = b1 - b0
	if err != nil {
		st.Verdict = VerdictError
		c.stats = append(c.stats, st)
		return c.fail(err)
	}
	st.ElementsOut = elemsOut

	if c.mode == CheckOff || mkState == nil {
		c.stats = append(c.stats, st)
		return nil
	}

	t1 := time.Now()
	var prepBytes, prepMsgs int64
	var prepRounds int
	if checkPrep != nil {
		pb0, pm0, pr0 := c.commSnapshot()
		err := checkPrep()
		pb1, pm1, pr1 := c.commSnapshot()
		prepBytes, prepMsgs, prepRounds = pb1-pb0, pm1-pm0, pr1-pr0
		if err != nil {
			st.Verdict = VerdictError
			st.CheckerBytes, st.CheckerMsgs, st.CheckerRounds = prepBytes, prepMsgs, prepRounds
			st.CheckNs = time.Since(t1).Nanoseconds()
			c.stats = append(c.stats, st)
			return c.fail(err)
		}
	}
	states := mkState(label)
	st.CheckNs = time.Since(t1).Nanoseconds()
	return c.settle(st, states, prepBytes, prepMsgs, prepRounds)
}

// settle registers a stage's checker states per the check mode — queued
// for the batched Verify in deferred mode, resolved inline in eager
// mode — and appends the finished stats entry. The prep figures are any
// checker-side communication the stage already paid (zero for stages
// without a preparation step).
func (c *Context) settle(st CheckStats, states []core.CheckState, prepBytes, prepMsgs int64, prepRounds int) error {
	switch c.mode {
	case CheckDeferred:
		st.Verdict = VerdictPending
		st.CheckerBytes, st.CheckerMsgs, st.CheckerRounds = prepBytes, prepMsgs, prepRounds
		for _, s := range states {
			st.BatchWords += len(s.Words()) + 1
		}
		c.pending = append(c.pending, pendingCheck{states: states, stats: len(c.stats)})
		c.stats = append(c.stats, st)
		return nil
	default: // CheckEager
		cb0, cm0, cr0 := c.commSnapshot()
		t2 := time.Now()
		verdicts, err := core.Resolve(c.w, states...)
		st.CheckNs += time.Since(t2).Nanoseconds()
		cb1, cm1, cr1 := c.commSnapshot()
		st.CheckerBytes = prepBytes + cb1 - cb0
		st.CheckerMsgs = prepMsgs + cm1 - cm0
		st.CheckerRounds = prepRounds + cr1 - cr0
		if err != nil {
			st.Verdict = VerdictError
			c.stats = append(c.stats, st)
			return c.fail(err)
		}
		ok := true
		for _, v := range verdicts {
			ok = ok && v
		}
		if ok {
			st.Verdict = VerdictPass
			c.stats = append(c.stats, st)
			return nil
		}
		st.Verdict = VerdictFail
		c.stats = append(c.stats, st)
		return c.fail(&StageError{Stage: st.Stage, Op: st.Op})
	}
}

// runStreamStage executes one streaming verification stage: drive
// consumes this PE's sources chunk by chunk and accumulates the
// checker's local phase, returning the sealed states plus the
// input-side and output-side metering. There is no operation to run —
// the data already streamed past — so the drive is charged entirely to
// the checker, and under CheckOff the sources are not consumed at all.
// Drives must not communicate.
func (c *Context) runStreamStage(op string, drive func(label string) ([]core.CheckState, stream.Meter, stream.Meter, error)) error {
	if c.err != nil {
		return c.err
	}
	label := fmt.Sprintf("%s#%d", op, len(c.stats))
	st := CheckStats{Stage: label, Op: op, Verdict: VerdictSkipped}
	span := c.w.Span(obs.KindStage, label)
	defer span.End()
	if c.mode == CheckOff {
		c.stats = append(c.stats, st)
		return nil
	}
	t0 := time.Now()
	states, in, out, err := drive(label)
	st.CheckNs = time.Since(t0).Nanoseconds()
	st.ElementsIn = in.Elements
	st.ElementsOut = out.Elements
	total := in
	total.Merge(out)
	st.Chunks = total.Chunks
	st.PeakResident = total.PeakResident
	if err != nil {
		st.Verdict = VerdictError
		c.stats = append(c.stats, st)
		return c.fail(err)
	}
	return c.settle(st, states, 0, 0, 0)
}

// Verify resolves every pending checker in one batched collective round
// and reports the verdicts: nil if all stages passed, or an error
// naming each stage whose checker rejected (unwrapping to
// ErrCheckFailed). In eager or off mode — or with nothing pending — it
// returns the Context's sticky error, if any. If a VerifyAsync round is
// still in flight, Verify awaits and applies it first, so after Verify
// returns every stage so far has its final verdict — Verify is the
// pipeline's synchronous barrier whether or not overlap is in play.
//
// Like every collective, all PEs must call Verify at the same point of
// their pipeline. The batch costs a single all-reduction of the
// concatenated checker states regardless of how many stages are
// pending; per-batch accounting is appended to VerifySummaries.
func (c *Context) Verify() error {
	if err := c.awaitOutstanding(); err != nil {
		return err
	}
	if c.err != nil {
		return c.err
	}
	if len(c.pending) == 0 {
		return nil
	}
	states, sum := c.batchStates()
	b0, m0, r0 := c.commSnapshot()
	t0 := time.Now()
	verdicts, err := core.Resolve(c.w, states...)
	sum.WallNs = time.Since(t0).Nanoseconds()
	b1, m1, r1 := c.commSnapshot()
	sum.Bytes, sum.Msgs, sum.Rounds = b1-b0, m1-m0, r1-r0
	if err != nil {
		return c.fail(err)
	}
	pending := c.pending
	c.pending = nil
	return c.applyBatch(pending, verdicts, sum)
}

// VerifyAsync launches the batched resolution of every pending checker
// on a dedicated sub-communicator and returns without waiting for the
// verdicts: the reduction rides the wire while the caller runs the next
// stage's local work (accumulator scans, streamed chunk drains). The
// round is awaited and applied at the next VerifyAsync or Verify call —
// so verdicts surface one boundary later than with Verify, but the
// resolution latency hides behind compute. Verdicts, attribution, and
// checker residues are bit-identical to the synchronous path; only the
// wall-clock placement changes.
//
// At most one round is outstanding: if a previous VerifyAsync round is
// still in flight, it is awaited (and its verdicts applied) before the
// new one launches. Outside CheckDeferred mode, or when
// Options.NoOverlap is set, VerifyAsync degrades to Verify. Like every
// collective, all PEs must call it at the same point of their pipeline.
func (c *Context) VerifyAsync() error {
	if c.mode != CheckDeferred || c.opts.NoOverlap {
		return c.Verify()
	}
	if err := c.awaitOutstanding(); err != nil {
		return err
	}
	if c.err != nil {
		return c.err
	}
	if len(c.pending) == 0 {
		return nil
	}
	states, sum := c.batchStates()
	c.outstanding = &asyncRound{pending: c.pending, sum: sum, res: core.ResolveAsync(c.w, states...)}
	c.pending = nil
	return nil
}

// awaitOutstanding blocks on the in-flight VerifyAsync round, if any,
// and applies its verdicts exactly as the synchronous Verify would.
// The summary's traffic figures come from the round's dedicated
// sub-communicator, so they meter the resolution alone even though
// other traffic overlapped it.
func (c *Context) awaitOutstanding() error {
	round := c.outstanding
	if round == nil {
		return nil
	}
	c.outstanding = nil
	verdicts, err := round.res.Await()
	round.sum.Bytes, round.sum.Msgs, round.sum.Rounds, round.sum.WallNs = round.res.Cost()
	// The round is done and the at-most-one-outstanding discipline makes
	// this await SPMD-ordered, so its tag block can be recycled — a
	// long-lived Context (service job) launches unboundedly many rounds
	// from a finite block space.
	round.res.Release()
	if err != nil {
		return c.fail(err)
	}
	return c.applyBatch(round.pending, verdicts, round.sum)
}

// batchStates concatenates the pending stages' checker states and
// builds the summary skeleton for one batched resolution.
func (c *Context) batchStates() ([]core.CheckState, VerifySummary) {
	var states []core.CheckState
	for _, p := range c.pending {
		states = append(states, p.states...)
	}
	sum := VerifySummary{Stages: len(c.pending)}
	for _, s := range states {
		sum.Words += len(s.Words()) + 1
	}
	return states, sum
}

// applyBatch records one resolved batch: per-stage verdicts into the
// stats entries, failed stage labels into the summary, the summary into
// the Context, and the joined StageErrors as the result (nil if every
// stage passed). Shared by the synchronous Verify and the async path,
// which is what keeps their attribution identical.
func (c *Context) applyBatch(pending []pendingCheck, verdicts []bool, sum VerifySummary) error {
	var failures []error
	vi := 0
	for _, p := range pending {
		ok := true
		for range p.states {
			ok = ok && verdicts[vi]
			vi++
		}
		entry := &c.stats[p.stats]
		if ok {
			entry.Verdict = VerdictPass
		} else {
			entry.Verdict = VerdictFail
			sum.Failed = append(sum.Failed, entry.Stage)
			failures = append(failures, &StageError{Stage: entry.Stage, Op: entry.Op})
		}
	}
	c.summaries = append(c.summaries, sum)
	if len(failures) > 0 {
		return c.fail(errors.Join(failures...))
	}
	return nil
}

// ---------------------------------------------------------------------
// Datasets
// ---------------------------------------------------------------------

// Dataset is a distributed collection of (key, value) pairs bound to a
// Context; each PE holds its local share. Operations return new
// Datasets (or terminal results) and register their checkers with the
// Context per its CheckMode.
type Dataset struct {
	ctx   *Context
	pairs []Pair
}

// Seq is a distributed sequence of 64-bit words bound to a Context.
type Seq struct {
	ctx  *Context
	vals []uint64
}

// Pairs wraps this PE's local share of a distributed pair collection.
func (c *Context) Pairs(local []Pair) *Dataset { return &Dataset{ctx: c, pairs: local} }

// Seq wraps this PE's local share of a distributed word sequence.
func (c *Context) Seq(local []uint64) *Seq { return &Seq{ctx: c, vals: local} }

// Collect returns this PE's local share of the dataset, or the
// Context's sticky error. In deferred mode the data may still await
// verification — call Context.Verify for the verdicts.
func (d *Dataset) Collect() ([]Pair, error) {
	if d.ctx.err != nil {
		return nil, d.ctx.err
	}
	return d.pairs, nil
}

// Collect returns this PE's local share of the sequence; see
// Dataset.Collect.
func (s *Seq) Collect() ([]uint64, error) {
	if s.ctx.err != nil {
		return nil, s.ctx.err
	}
	return s.vals, nil
}

// sameContext guards two-input operations against mixing pipelines.
func (c *Context) sameContext(other *Context) error {
	if c != other {
		return c.fail(errors.New("repro: operands belong to different Contexts"))
	}
	return nil
}

// ReduceByKey aggregates values per key with fn, verified by the sum
// aggregation checker (Theorem 1). fn must be associative, commutative,
// and satisfy x⊕y ≠ x for y ≠ 0 — SumFn and XorFn qualify.
func (d *Dataset) ReduceByKey(fn ReduceFn) *Dataset {
	c := d.ctx
	var out []Pair
	c.runStage("ReduceByKey", len(d.pairs), func() (int, error) {
		var err error
		out, err = ops.ReduceByKey(c.w, c.pt, d.pairs, fn)
		return len(out), err
	}, func(label string) []core.CheckState {
		return []core.CheckState{core.NewSumAggStatePar(label, c.opts.Sum, c.seed, c.par, d.pairs, out)}
	})
	return &Dataset{ctx: c, pairs: out}
}

// GroupByKey groups all values per key, the redistribution phase
// verified invasively (Corollary 14). Groups are sorted by key, values
// within a group ascending.
func (d *Dataset) GroupByKey() ([]Group, error) {
	c := d.ctx
	var red ops.RedistInputs
	var groups []Group
	err := c.runStage("GroupByKey", len(d.pairs), func() (int, error) {
		var err error
		red, err = ops.RedistributeByKey(c.w, c.pt, d.pairs)
		if err != nil {
			return 0, err
		}
		groups = groupPairs(red.After)
		return len(groups), nil
	}, func(label string) []core.CheckState {
		return []core.CheckState{core.NewRedistStatePar(label, c.opts.Perm, c.seed, c.par, c.pt, c.w.Rank(), red.Before, red.After)}
	})
	if err != nil {
		return nil, err
	}
	return groups, nil
}

// Join computes the inner hash join with other, the redistribution of
// both relations verified invasively (Corollary 15); the local join is
// deterministic local work outside the checker's scope, per the paper.
// Rows are sorted by (key, left, right), so identical runs produce
// identical output.
func (d *Dataset) Join(other *Dataset) ([]JoinRow, error) {
	c := d.ctx
	if err := c.sameContext(other.ctx); err != nil {
		return nil, err
	}
	var redL, redR ops.RedistInputs
	var rows []JoinRow
	err := c.runStage("Join", len(d.pairs)+len(other.pairs), func() (int, error) {
		var err error
		redL, err = ops.RedistributeByKey(c.w, c.pt, d.pairs)
		if err != nil {
			return 0, err
		}
		redR, err = ops.RedistributeByKey(c.w, c.pt, other.pairs)
		if err != nil {
			return 0, err
		}
		rows = joinLocal(redL.After, redR.After)
		return len(rows), nil
	}, func(label string) []core.CheckState {
		return []core.CheckState{
			core.NewRedistStatePar(label+"/left", c.opts.Perm, c.seed, c.par, c.pt, c.w.Rank(), redL.Before, redL.After),
			core.NewRedistStatePar(label+"/right", c.opts.Perm, c.seed, c.par, c.pt, c.w.Rank(), redR.Before, redR.After),
		}
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// MinByKey computes per-key minima, verified by the deterministic
// certificate checker (Theorem 9). The result and witness certificate
// are replicated at every PE, as the checker requires.
func (d *Dataset) MinByKey() (MinMaxResult, error) {
	return d.optByKey("MinByKey", true)
}

// MaxByKey computes per-key maxima; see MinByKey.
func (d *Dataset) MaxByKey() (MinMaxResult, error) {
	return d.optByKey("MaxByKey", false)
}

func (d *Dataset) optByKey(op string, wantMin bool) (MinMaxResult, error) {
	c := d.ctx
	var res MinMaxResult
	err := c.runStage(op, len(d.pairs), func() (int, error) {
		var err error
		if wantMin {
			res, err = ops.MinByKey(c.w, c.pt, d.pairs)
		} else {
			res, err = ops.MaxByKey(c.w, c.pt, d.pairs)
		}
		return len(res.Result), err
	}, func(label string) []core.CheckState {
		if wantMin {
			return []core.CheckState{core.NewMinAggState(label, c.seed, c.w.Rank(), c.w.Size(), d.pairs, res.Result, res.Witness)}
		}
		return []core.CheckState{core.NewMaxAggState(label, c.seed, c.w.Rank(), c.w.Size(), d.pairs, res.Result, res.Witness)}
	})
	if err != nil {
		return MinMaxResult{}, err
	}
	return res, nil
}

// MedianByKey computes per-key medians — returned as doubled values,
// replicated at every PE — verified by the median checker with
// tie-breaking certificates (Theorem 10). Works for arbitrary, also
// non-unique, values.
func (d *Dataset) MedianByKey() ([]Pair, error) {
	c := d.ctx
	var medians []Pair
	ties := make(map[uint64]core.TieCert)
	err := c.runStage("MedianByKey", len(d.pairs), func() (int, error) {
		groups, err := ops.GroupByKey(c.w, c.pt, d.pairs)
		if err != nil {
			return 0, err
		}
		// Derive medians and tie certificates from the grouped values,
		// then replicate both (part of the operation, not the checker).
		flat := make([]uint64, 0, 6*len(groups))
		for _, g := range groups {
			m2 := ops.MedianOfSorted2(g.Values)
			tc := core.ComputeTieCert(g.Values, m2)
			flat = append(flat, g.Key, m2, tc.EqLow, tc.EqHigh, tc.AtSlot)
		}
		all, err := c.w.Coll.AllGather(flat)
		if err != nil {
			return 0, err
		}
		for _, ws := range all {
			for i := 0; i+5 <= len(ws); i += 5 {
				medians = append(medians, Pair{Key: ws[i], Value: ws[i+1]})
				ties[ws[i]] = core.TieCert{EqLow: ws[i+2], EqHigh: ws[i+3], AtSlot: ws[i+4]}
			}
		}
		data.SortPairsByKey(medians)
		return len(medians), nil
	}, func(label string) []core.CheckState {
		return []core.CheckState{core.NewMedianAggState(label, c.opts.Sum, c.seed, c.w.Rank(), d.pairs, medians, ties)}
	})
	if err != nil {
		return nil, err
	}
	return medians, nil
}

// AverageByKey computes per-key averages as (key, sum, count) triples —
// the count doubling as the Corollary 8 certificate — verified by the
// average checker. The result stays distributed.
func (d *Dataset) AverageByKey() ([]Triple, error) {
	c := d.ctx
	var out []Triple
	err := c.runStage("AverageByKey", len(d.pairs), func() (int, error) {
		var err error
		out, err = ops.AverageByKey(c.w, c.pt, d.pairs)
		return len(out), err
	}, func(label string) []core.CheckState {
		return []core.CheckState{core.NewAvgAggStatePar(label, c.opts.Sum, c.seed, c.par, d.pairs, core.AvgAssertionsFromTriples(out))}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Sort globally sorts the sequence, verified by the sort checker
// (Theorem 7).
func (s *Seq) Sort() *Seq {
	c := s.ctx
	var out []uint64
	c.runStage("Sort", len(s.vals), func() (int, error) {
		var err error
		out, err = ops.Sort(c.w, s.vals)
		return len(out), err
	}, func(label string) []core.CheckState {
		return []core.CheckState{core.NewSortedStatePar(label, c.opts.Perm, c.seed, c.par, [][]uint64{s.vals}, out)}
	})
	return &Seq{ctx: c, vals: out}
}

// Merge merges this sorted sequence with another sorted sequence,
// verified by the merge checker (Corollary 13).
func (s *Seq) Merge(other *Seq) *Seq {
	c := s.ctx
	if err := c.sameContext(other.ctx); err != nil {
		return &Seq{ctx: c}
	}
	var out []uint64
	c.runStage("Merge", len(s.vals)+len(other.vals), func() (int, error) {
		var err error
		out, err = ops.Merge(c.w, s.vals, other.vals)
		return len(out), err
	}, func(label string) []core.CheckState {
		return []core.CheckState{core.NewSortedStatePar(label, c.opts.Perm, c.seed, c.par, [][]uint64{s.vals, other.vals}, out)}
	})
	return &Seq{ctx: c, vals: out}
}

// Union concatenates this sequence with another, verified as a
// permutation of the two inputs (Corollary 12).
func (s *Seq) Union(other *Seq) *Seq {
	c := s.ctx
	if err := c.sameContext(other.ctx); err != nil {
		return &Seq{ctx: c}
	}
	var out []uint64
	c.runStage("Union", len(s.vals)+len(other.vals), func() (int, error) {
		var err error
		out, err = ops.Union(c.w, s.vals, other.vals)
		return len(out), err
	}, func(label string) []core.CheckState {
		return []core.CheckState{core.NewPermStatePar(label, c.opts.Perm, c.seed, c.par, [][]uint64{s.vals, other.vals}, out)}
	})
	return &Seq{ctx: c, vals: out}
}

// Zip pairs this sequence with another index-wise, verified by the zip
// checker (Theorem 11). The sequences may be distributed differently;
// their global lengths must agree.
func (s *Seq) Zip(other *Seq) *Dataset {
	c := s.ctx
	if err := c.sameContext(other.ctx); err != nil {
		return &Dataset{ctx: c}
	}
	var out []Pair
	var starts, totals []uint64
	c.runStagePrep("Zip", len(s.vals)+len(other.vals), func() (int, error) {
		// Guard here rather than in the state constructor: a
		// zero-iteration zip checker has an empty fingerprint and would
		// silently accept anything.
		if c.mode != CheckOff && c.opts.Zip.Iterations < 1 {
			return 0, errors.New("repro: Options.Zip: iterations must be >= 1")
		}
		var err error
		out, err = ops.Zip(c.w, s.vals, other.vals)
		return len(out), err
	}, func() error {
		// The checker's position-dependent fingerprints need the global
		// start offsets: one vectorized prefix sum, charged to the
		// checker and skipped entirely under CheckOff (the local
		// accumulation that follows stays zero-communication).
		var err error
		starts, totals, err = core.ExclusiveCounts(c.w, len(s.vals), len(other.vals), len(out))
		return err
	}, func(label string) []core.CheckState {
		lengthsOK := totals[0] == totals[1] && totals[1] == totals[2]
		return []core.CheckState{core.NewZipState(label, c.opts.Zip, c.seed, s.vals, other.vals, out,
			starts[0], starts[1], starts[2], lengthsOK)}
	})
	return &Dataset{ctx: c, pairs: out}
}

// AssertSum registers a sum aggregation check that output is the
// correct reduction of input — the pure checker entry (Theorem 1) in
// pipeline form, for verifying results computed elsewhere. In eager
// mode the verdict returns immediately; in deferred mode it surfaces at
// Verify.
func (c *Context) AssertSum(input, output []Pair) error {
	return c.runStage("AssertSum", len(input), func() (int, error) {
		return len(output), nil
	}, func(label string) []core.CheckState {
		return []core.CheckState{core.NewSumAggStatePar(label, c.opts.Sum, c.seed, c.par, input, output)}
	})
}

// AssertSorted registers a check that output is a sorted permutation of
// input — the pure sort checker (Theorem 7) in pipeline form; see
// AssertSum.
func (c *Context) AssertSorted(input, output []uint64) error {
	return c.runStage("AssertSorted", len(input), func() (int, error) {
		return len(output), nil
	}, func(label string) []core.CheckState {
		return []core.CheckState{core.NewSortedStatePar(label, c.opts.Perm, c.seed, c.par, [][]uint64{input}, output)}
	})
}

// groupPairs builds sorted groups from redistributed pairs.
func groupPairs(after []Pair) []Group {
	m := make(map[uint64][]uint64)
	for _, p := range after {
		m[p.Key] = append(m[p.Key], p.Value)
	}
	groups := make([]Group, 0, len(m))
	for k, vs := range m {
		data.SortU64(vs)
		groups = append(groups, Group{Key: k, Values: vs})
	}
	sortGroupsByKey(groups)
	return groups
}

// joinLocal computes the local inner join of two redistributed
// relations, rows sorted by (key, left, right) for deterministic
// output.
func joinLocal(left, right []Pair) []JoinRow {
	build := make(map[uint64][]uint64, len(left))
	for _, p := range left {
		build[p.Key] = append(build[p.Key], p.Value)
	}
	var rows []JoinRow
	for _, p := range right {
		for _, lv := range build[p.Key] {
			rows = append(rows, JoinRow{Key: p.Key, Left: lv, Right: p.Value})
		}
	}
	sortJoinRows(rows)
	return rows
}
