package repro_test

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/data"
)

// ExampleReduceByKeyChecked aggregates values per key on four PEs with
// the sum checker attached; the result is provably correct up to the
// checker's failure probability (< 1.3e-9 with default options).
func ExampleReduceByKeyChecked() {
	global := []repro.Pair{
		{Key: 1, Value: 10}, {Key: 2, Value: 5},
		{Key: 1, Value: 7}, {Key: 2, Value: 1},
	}
	total := make(chan uint64, 1)
	err := repro.Run(4, 42, func(w *repro.Worker) error {
		s, e := data.SplitEven(len(global), w.Size(), w.Rank())
		out, err := repro.ReduceByKeyChecked(w, repro.DefaultOptions(), global[s:e], repro.SumFn)
		if err != nil {
			return err
		}
		// Collect key 1's sum at its owning PE.
		for _, pr := range out {
			if pr.Key == 1 {
				total <- pr.Value
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sum of key 1:", <-total)
	// Output: sum of key 1: 17
}

// ExampleSortChecked sorts a distributed sequence; the checker verifies
// the output is a sorted permutation of the input.
func ExampleSortChecked() {
	global := []uint64{9, 3, 7, 1, 8, 2, 6, 4}
	shares := make([][]uint64, 2)
	err := repro.Run(2, 7, func(w *repro.Worker) error {
		s, e := data.SplitEven(len(global), w.Size(), w.Rank())
		out, err := repro.SortChecked(w, repro.DefaultOptions(), global[s:e])
		if err != nil {
			return err
		}
		shares[w.Rank()] = out
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(append(shares[0], shares[1]...))
	// Output: [1 2 3 4 6 7 8 9]
}

// ExampleNewContext chains checked operations on the pipeline API in
// deferred mode: both stages' checkers resolve in one batched
// collective round at Verify, and the stats name each stage's verdict.
func ExampleNewContext() {
	pairs := []repro.Pair{
		{Key: 1, Value: 10}, {Key: 2, Value: 5},
		{Key: 1, Value: 7}, {Key: 2, Value: 1},
	}
	seq := []uint64{9, 3, 7, 1}
	err := repro.Run(2, 42, func(w *repro.Worker) error {
		opts := repro.DefaultOptions()
		opts.Mode = repro.CheckDeferred
		ctx, err := repro.NewContext(w, opts)
		if err != nil {
			return err
		}
		s, e := data.SplitEven(len(pairs), w.Size(), w.Rank())
		if _, err := ctx.Pairs(pairs[s:e]).ReduceByKey(repro.SumFn).Collect(); err != nil {
			return err
		}
		s, e = data.SplitEven(len(seq), w.Size(), w.Rank())
		if _, err := ctx.Seq(seq[s:e]).Sort().Collect(); err != nil {
			return err
		}
		if err := ctx.Verify(); err != nil { // one batched round for both stages
			return err
		}
		if w.Rank() == 0 {
			for _, st := range ctx.Stats() {
				fmt.Println(st.Stage, st.Verdict)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// ReduceByKey#0 pass
	// Sort#1 pass
}

// ExampleCheckSum verifies an asserted aggregation produced elsewhere —
// the pure checker interface. A corrupted assertion is rejected.
func ExampleCheckSum() {
	input := []repro.Pair{{Key: 5, Value: 2}, {Key: 5, Value: 3}}
	wrong := []repro.Pair{{Key: 5, Value: 6}} // should be 5
	err := repro.Run(2, 1, func(w *repro.Worker) error {
		var in, out []repro.Pair
		if w.Rank() == 0 {
			in, out = input, wrong
		}
		ok, err := repro.CheckSum(w, repro.DefaultOptions(), in, out)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			fmt.Println("accepted:", ok)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: accepted: false
}

// ExampleContext_StreamPairs verifies a sum aggregation over a
// generator-backed stream: 100 000 pairs per PE are produced and
// discarded chunk by chunk — only 1000 elements are ever resident —
// while the checker accumulates its constant-size state.
func ExampleContext_StreamPairs() {
	const n, chunk, keys = 100_000, 1_000, 10
	// The asserted result: key k owns the sum of all values v = r*n + i
	// with i%keys == k, over both PEs' streams; PE 0 holds it.
	sums := make([]uint64, keys)
	for r := 0; r < 2; r++ {
		for i := 0; i < n; i++ {
			sums[i%keys] += uint64(r*n + i)
		}
	}
	asserted := make([]repro.Pair, keys)
	for k, s := range sums {
		asserted[k] = repro.Pair{Key: uint64(k), Value: s}
	}
	report := make(chan string, 1)
	err := repro.Run(2, 42, func(w *repro.Worker) error {
		ctx, err := repro.NewContext(w, repro.DefaultOptions())
		if err != nil {
			return err
		}
		input := repro.GenPairs(n, chunk, func(i int) repro.Pair {
			return repro.Pair{Key: uint64(i % keys), Value: uint64(w.Rank()*n + i)}
		})
		var out []repro.Pair
		if w.Rank() == 0 {
			out = asserted
		}
		if err := ctx.StreamPairs(input).AssertSum(repro.SlicePairs(out, 0)); err != nil {
			return err
		}
		if st := ctx.Stats()[0]; w.Rank() == 0 {
			report <- fmt.Sprintf("verified %d streamed elements in %d chunks, peak resident %d",
				st.ElementsIn, st.Chunks, st.PeakResident)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(<-report)
	// Output: verified 100000 streamed elements in 101 chunks, peak resident 1000
}
