package repro

import (
	"errors"

	"repro/internal/core"
	"repro/internal/stream"
)

// Streaming checked operations: the chunked accumulate/merge/resolve
// form of the checkers, for workloads whose data is produced and
// discarded chunk by chunk and never fits in RAM at once.
//
// A source yields this PE's share in chunks; StreamPairs/StreamSeq wrap
// a source into a streaming verification stage whose Assert methods
// consume the input and the asserted output chunk by chunk, fold each
// chunk into a constant-size checker partial, and register the sealed
// state with the Context exactly like a one-shot stage — eagerly
// resolved or batched into Verify per the CheckMode. The sealed states
// are bit-identical to the one-shot path for every chunk size, so
// soundness (one-sided error, failure probability per Options) is
// unchanged; the resident footprint drops from the whole share to one
// chunk, metered per stage in CheckStats.Chunks and
// CheckStats.PeakResident.

// PairSource yields successive chunks of this PE's share of a
// distributed pair collection; a nil or empty chunk ends the stream,
// and a returned chunk is only valid until the next call. Build one
// with SlicePairs, ChanPairs, or GenPairs — or implement the interface
// over any producer (a file reader, a network receiver).
type PairSource = stream.PairSource

// SeqSource is PairSource for distributed sequences of 64-bit words.
type SeqSource = stream.SeqSource

// SlicePairs yields an in-memory slice in windows of at most chunk
// elements (non-positive: one window) — the adapter from one-shot data
// to the streaming entry points.
func SlicePairs(ps []Pair, chunk int) PairSource { return stream.SlicePairs(ps, chunk) }

// SliceSeq is SlicePairs for word sequences.
func SliceSeq(xs []uint64, chunk int) SeqSource { return stream.SliceSeq(xs, chunk) }

// ChanPairs yields the chunks sent on ch until it is closed,
// decoupling a producer goroutine from checker accumulation.
func ChanPairs(ch <-chan []Pair) PairSource { return stream.ChanPairs(ch) }

// ChanSeq is ChanPairs for word sequences.
func ChanSeq(ch <-chan []uint64) SeqSource { return stream.ChanSeq(ch) }

// GenPairs yields n generated pairs in chunks of the given size
// (non-positive: a default), calling gen with the global index 0..n-1;
// one chunk-sized buffer is reused for the whole stream, so the
// resident footprint is a single chunk regardless of n.
func GenPairs(n, chunk int, gen func(i int) Pair) PairSource { return stream.GenPairs(n, chunk, gen) }

// GenSeq is GenPairs for word sequences.
func GenSeq(n, chunk int, gen func(i int) uint64) SeqSource { return stream.GenSeq(n, chunk, gen) }

// StreamedPairs is a streaming view of this PE's share of a distributed
// pair collection, bound to a Context. Each Assert method consumes the
// underlying source, so a StreamedPairs is strictly single-use: a
// second Assert fails with a sticky Context error rather than silently
// verifying an exhausted (zero-element) stream. Under CheckOff the
// stage skips all work and consumes nothing (a channel-backed source's
// producer must not rely on being drained when checking is disabled),
// but the single-use rule still applies.
type StreamedPairs struct {
	ctx  *Context
	src  PairSource
	used bool
}

// StreamPairs wraps a chunked source of this PE's local pair share for
// streaming verification; see StreamedPairs.
func (c *Context) StreamPairs(src PairSource) *StreamedPairs {
	return &StreamedPairs{ctx: c, src: src}
}

// StreamedSeq is StreamedPairs for word sequences, with the same
// single-use and CheckOff consumption contract.
type StreamedSeq struct {
	ctx  *Context
	src  SeqSource
	used bool
}

// errStreamReused guards the single-use contract: an Assert over an
// already-consumed stream would verify zero elements and vacuously
// pass, which a verification library must never do silently.
var errStreamReused = errors.New("repro: streamed view is single-use: its source was already consumed by an earlier Assert")

// claim marks a streamed view consumed, failing the Context on reuse.
func claimStream(c *Context, used *bool) error {
	if *used {
		return c.fail(errStreamReused)
	}
	*used = true
	return nil
}

// StreamSeq wraps a chunked source of this PE's local word-sequence
// share for streaming verification; see StreamedSeq.
func (c *Context) StreamSeq(src SeqSource) *StreamedSeq {
	return &StreamedSeq{ctx: c, src: src}
}

// AssertSum registers a streamed sum aggregation check: output must be
// the correct per-key sum reduction of the streamed input (Theorem 1).
// Both sources are fully consumed, one chunk resident at a time (under
// CheckOff neither is touched — see StreamedPairs); chunk order is
// immaterial on either side. In eager mode the verdict returns
// immediately, in deferred mode it surfaces at Verify.
func (s *StreamedPairs) AssertSum(output PairSource) error {
	return s.assertAgg("StreamSum", false, output)
}

// AssertCount registers a streamed count aggregation check: output must
// hold, per key, the number of streamed input pairs with that key;
// input values are ignored. See AssertSum.
func (s *StreamedPairs) AssertCount(output PairSource) error {
	return s.assertAgg("StreamCount", true, output)
}

func (s *StreamedPairs) assertAgg(op string, count bool, output PairSource) error {
	c := s.ctx
	if err := claimStream(c, &s.used); err != nil {
		return err
	}
	return c.runStreamStage(op, func(label string) ([]core.CheckState, stream.Meter, stream.Meter, error) {
		acc := stream.NewSumAccumulator(label, c.opts.Sum, c.seed, c.par, count)
		if err := acc.DrainInput(s.src); err != nil {
			return nil, acc.In, acc.Out, err
		}
		if err := acc.DrainOutput(output); err != nil {
			return nil, acc.In, acc.Out, err
		}
		return []core.CheckState{acc.Seal()}, acc.In, acc.Out, nil
	})
}

// AssertRedistributed registers a streamed redistribution check
// (Corollary 14): after must hold exactly the pairs of the streamed
// before-stream, re-placed so every key lives on the PE the Context's
// partitioner assigns it — the invasive GroupBy/Join exchange check in
// streaming form. Chunk order is immaterial on either side.
func (s *StreamedPairs) AssertRedistributed(after PairSource) error {
	c := s.ctx
	if err := claimStream(c, &s.used); err != nil {
		return err
	}
	return c.runStreamStage("StreamRedist", func(label string) ([]core.CheckState, stream.Meter, stream.Meter, error) {
		acc := stream.NewRedistAccumulator(label, c.opts.Perm, c.seed, c.par, c.pt, c.w.Rank())
		if err := acc.DrainBefore(s.src); err != nil {
			return nil, acc.Before, acc.After, err
		}
		if err := acc.DrainAfter(after); err != nil {
			return nil, acc.Before, acc.After, err
		}
		return []core.CheckState{acc.Seal()}, acc.Before, acc.After, nil
	})
}

// AssertSorted registers a streamed sort check: output must be a
// globally sorted permutation of the streamed input (Theorem 7). Input
// chunks may arrive in any order; the output source must yield this
// PE's asserted output in sequence order — each chunk the next
// contiguous segment — which every source in this package does.
func (s *StreamedSeq) AssertSorted(output SeqSource) error {
	c := s.ctx
	if err := claimStream(c, &s.used); err != nil {
		return err
	}
	return c.runStreamStage("StreamSorted", func(label string) ([]core.CheckState, stream.Meter, stream.Meter, error) {
		acc := stream.NewSortAccumulator(label, c.opts.Perm, c.seed, c.par)
		if err := acc.DrainInput(s.src); err != nil {
			return nil, acc.In, acc.Out, err
		}
		if err := acc.DrainOutput(output); err != nil {
			return nil, acc.In, acc.Out, err
		}
		return []core.CheckState{acc.Seal()}, acc.In, acc.Out, nil
	})
}

// AssertPermutation registers a streamed permutation check: output must
// be a permutation of the streamed input (Lemma 4; with a second input
// union semantics follow Corollary 12). Chunk order is immaterial on
// either side.
func (s *StreamedSeq) AssertPermutation(output SeqSource) error {
	c := s.ctx
	if err := claimStream(c, &s.used); err != nil {
		return err
	}
	return c.runStreamStage("StreamPerm", func(label string) ([]core.CheckState, stream.Meter, stream.Meter, error) {
		acc := stream.NewPermAccumulator(label, c.opts.Perm, c.seed, c.par)
		if err := acc.DrainInput(s.src); err != nil {
			return nil, acc.In, acc.Out, err
		}
		if err := acc.DrainOutput(output); err != nil {
			return nil, acc.In, acc.Out, err
		}
		return []core.CheckState{acc.Seal()}, acc.In, acc.Out, nil
	})
}
