package repro

import (
	"errors"
	"testing"

	"repro/internal/data"
	"repro/internal/workload"
)

func shard(ps []Pair, p, r int) []Pair {
	s, e := data.SplitEven(len(ps), p, r)
	return ps[s:e]
}

func shardU(xs []uint64, p, r int) []uint64 {
	s, e := data.SplitEven(len(xs), p, r)
	return xs[s:e]
}

func TestReduceByKeyChecked(t *testing.T) {
	global := workload.ZipfPairs(3000, 300, 1000, 1)
	want := data.PairsToMapSum(global)
	const p = 4
	total := make(map[uint64]uint64)
	err := Run(p, 1, func(w *Worker) error {
		out, err := ReduceByKeyChecked(w, DefaultOptions(), shard(global, p, w.Rank()), SumFn)
		if err != nil {
			return err
		}
		flat := make([]uint64, 0, 2*len(out))
		for _, pr := range out {
			flat = append(flat, pr.Key, pr.Value)
		}
		all, err := w.Coll.Gather(0, flat)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			for _, ws := range all {
				for i := 0; i+2 <= len(ws); i += 2 {
					total[ws[i]] = ws[i+1]
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		if total[k] != v {
			t.Fatalf("key %d: %d, want %d", k, total[k], v)
		}
	}
}

func TestSortChecked(t *testing.T) {
	global := workload.UniformU64s(3000, 1e9, 2)
	const p = 4
	err := Run(p, 1, func(w *Worker) error {
		out, err := SortChecked(w, DefaultOptions(), shardU(global, p, w.Rank()))
		if err != nil {
			return err
		}
		if !data.IsSortedU64(out) {
			t.Errorf("rank %d share not sorted", w.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMergeAndUnionChecked(t *testing.T) {
	a := workload.UniformU64s(1000, 1e9, 3)
	b := workload.UniformU64s(1400, 1e9, 4)
	data.SortU64(a)
	data.SortU64(b)
	const p = 3
	err := Run(p, 1, func(w *Worker) error {
		if _, err := MergeChecked(w, DefaultOptions(), shardU(a, p, w.Rank()), shardU(b, p, w.Rank())); err != nil {
			return err
		}
		_, err := UnionChecked(w, DefaultOptions(), shardU(a, p, w.Rank()), shardU(b, p, w.Rank()))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZipChecked(t *testing.T) {
	a := workload.UniformU64s(2000, 1e9, 5)
	b := workload.UniformU64s(2000, 1e9, 6)
	const p = 4
	err := Run(p, 1, func(w *Worker) error {
		out, err := ZipChecked(w, DefaultOptions(), shardU(a, p, w.Rank()), shardU(b, p, w.Rank()))
		if err != nil {
			return err
		}
		s, _ := data.SplitEven(len(a), p, w.Rank())
		for i, pr := range out {
			if pr.Key != a[s+i] || pr.Value != b[s+i] {
				t.Errorf("rank %d pair %d mismatched", w.Rank(), i)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMinMedianAverageChecked(t *testing.T) {
	global := workload.UniformPairs(2000, 25, 1000, 7)
	const p = 4
	err := Run(p, 1, func(w *Worker) error {
		local := shard(global, p, w.Rank())
		if _, err := MinByKeyChecked(w, DefaultOptions(), local); err != nil {
			return err
		}
		if _, err := MaxByKeyChecked(w, DefaultOptions(), local); err != nil {
			return err
		}
		medians, err := MedianByKeyChecked(w, DefaultOptions(), local)
		if err != nil {
			return err
		}
		if len(medians) == 0 {
			t.Error("no medians returned")
		}
		if _, err := AverageByKeyChecked(w, DefaultOptions(), local); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJoinAndGroupByChecked(t *testing.T) {
	left := workload.UniformPairs(800, 40, 100, 8)
	right := workload.UniformPairs(600, 40, 100, 9)
	const p = 3
	err := Run(p, 1, func(w *Worker) error {
		if _, err := JoinChecked(w, DefaultOptions(), shard(left, p, w.Rank()), shard(right, p, w.Rank())); err != nil {
			return err
		}
		groups, err := GroupByKeyChecked(w, DefaultOptions(), shard(left, p, w.Rank()))
		if err != nil {
			return err
		}
		for i := 1; i < len(groups); i++ {
			if groups[i-1].Key >= groups[i].Key {
				t.Error("groups not sorted by key")
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// faultyReduce drops one key from a correct reduction, simulating a
// silent error inside the operation; the checked wrapper must surface
// ErrCheckFailed.
func TestCheckedWrapperSurfacesFaults(t *testing.T) {
	global := workload.ZipfPairs(1000, 100, 100, 10)
	const p = 2
	err := Run(p, 1, func(w *Worker) error {
		local := shard(global, p, w.Rank())
		// Run the real operation, then corrupt this PE's output share
		// and verify directly via the checker used by the wrapper.
		out, err := ReduceByKeyChecked(w, DefaultOptions(), local, SumFn)
		if err != nil {
			return err
		}
		bad := data.ClonePairs(out)
		if w.Rank() == 0 && len(bad) > 0 {
			bad[0].Value += 99
		}
		okErr := checkAgainst(w, local, bad)
		if okErr == nil {
			t.Error("corrupted output accepted")
		} else if !errors.Is(okErr, ErrCheckFailed) {
			return okErr
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// checkAgainst runs the sum checker the way the wrapper does.
func checkAgainst(w *Worker, input, output []Pair) error {
	ok, err := CheckSum(w, DefaultOptions(), input, output)
	if err != nil {
		return err
	}
	if !ok {
		return ErrCheckFailed
	}
	return nil
}
