// Pipeline: a multi-stage analytics job — zip two metric streams,
// aggregate averages, medians and minima per sensor — expressed on the
// Context/Dataset API with deferred, overlapped verification: every
// stage registers its checker, a mid-pipeline ctx.VerifyAsync() puts
// the first stages' batched resolution on the wire while the later
// stages compute, and the final ctx.Verify() resolves the rest and
// settles the in-flight round. Runs over real TCP sockets to show the
// framework is transport agnostic, and prints the per-stage stats the
// Context records.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/workload"
)

const (
	pes     = 3
	samples = 30000
	sensors = 50
)

func main() {
	// Two parallel streams: sensor ids and their readings, recorded by
	// different subsystems and therefore distributed differently.
	sensorIDs := make([]uint64, samples)
	readings := workload.UniformU64s(samples, 1000, 11)
	ids := workload.ZipfPairs(samples, sensors, 0, 12)
	for i := range sensorIDs {
		sensorIDs[i] = ids[i].Key
	}

	net, err := comm.NewTCPNetwork(pes)
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	opts := repro.DefaultOptions()
	opts.Mode = repro.CheckDeferred
	err = dist.RunNetwork(net, 1, func(w *dist.Worker) error {
		ctx, err := repro.NewContext(w, opts)
		if err != nil {
			return err
		}
		s, e := data.SplitEven(samples, pes, w.Rank())
		// Give the readings a different, skewed distribution.
		var rdLocal []uint64
		switch w.Rank() {
		case 0:
			rdLocal = readings[:samples/2]
		case 1:
			rdLocal = readings[samples/2 : samples/2+samples/4]
		default:
			rdLocal = readings[samples/2+samples/4:]
		}

		// Stage 1: zip sensor ids with readings (Theorem 11).
		zipped := ctx.Seq(sensorIDs[s:e]).Zip(ctx.Seq(rdLocal))

		// Stage 2: per-sensor average (Corollary 8 — the count
		// certificate falls out of the triple representation).
		averages, err := zipped.AverageByKey()
		if err != nil {
			return err
		}

		// Zip and average are done computing: launch their checkers'
		// batched resolution asynchronously. The reduction rides the
		// TCP sockets on a tag-safe sub-communicator while the median
		// and minimum stages compute; the final Verify awaits it.
		if err := ctx.VerifyAsync(); err != nil {
			return err
		}

		// Stage 3: per-sensor median (tie certificates, Theorem 10 —
		// readings repeat, so ties are everywhere).
		medians, err := zipped.MedianByKey()
		if err != nil {
			return err
		}

		// Stage 4: per-sensor minimum (deterministically checked with
		// the witness certificate, Theorem 9).
		mins, err := zipped.MinByKey()
		if err != nil {
			return err
		}

		// One batched round resolves the remaining checkers; the
		// overlapped round launched above is awaited here too.
		if err := ctx.Verify(); err != nil {
			return err
		}

		if w.Rank() == 0 {
			// Medians and minima are replicated everywhere; averages
			// stay distributed, so PE 0 reports its own share.
			med := make(map[uint64]float64, len(medians))
			for _, m := range medians {
				med[m.Key] = float64(m.Value) / 2
			}
			min := make(map[uint64]uint64, len(mins.Result))
			for _, pr := range mins.Result {
				min[pr.Key] = pr.Value
			}
			fmt.Printf("pipeline over TCP checked end to end: %d sensors\n", len(mins.Result))
			fmt.Println("sensor  avg      median  min   (PE 0's share)")
			for i, t := range averages {
				if i == 5 {
					break
				}
				avg := float64(t.Value) / float64(t.Count)
				fmt.Printf("%6d  %7.2f %7.1f %4d\n", t.Key, avg, med[t.Key], min[t.Key])
			}
			fmt.Println("\nper-stage stats (PE 0):")
			fmt.Printf("%-16s %10s %10s %10s %10s  %s\n", "stage", "in", "out", "op bytes", "chk words", "verdict")
			for _, st := range ctx.Stats() {
				fmt.Printf("%-16s %10d %10d %10d %10d  %s\n",
					st.Stage, st.ElementsIn, st.ElementsOut, st.OpBytes, st.BatchWords, st.Verdict)
			}
			for _, vs := range ctx.VerifySummaries() {
				fmt.Printf("verify: %d stages resolved in %d collective rounds, %d bytes sent by PE 0\n",
					vs.Stages, vs.Rounds, vs.Bytes)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
