// Sortcheck: a distributed sample sort verified by the sort checker via
// the pipeline API, and a deliberately buggy sorter — it forgets to
// merge the runs it receives — caught red-handed by the pure checker
// entry (Context.AssertSorted). Also demonstrates the polynomial
// permutation checker variants (Lemma 5).
package main

import (
	"errors"
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/workload"
)

const (
	pes = 4
	n   = 400000
)

// buggySort does everything ops.Sort does except the final local merge:
// each PE returns the runs it received concatenated, not merged — the
// classic "works on my single-node test" bug.
func buggySort(w *dist.Worker, local []uint64) ([]uint64, error) {
	mine := data.CloneU64s(local)
	data.SortU64(mine)
	if w.Size() == 1 {
		return mine, nil // single PE hides the bug
	}
	// Sample splitters exactly like the real sort would.
	sample := make([]uint64, 0, 16)
	for i := 0; i < 16 && len(mine) > 0; i++ {
		sample = append(sample, mine[i*len(mine)/16])
	}
	parts, err := w.Coll.AllGather(sample)
	if err != nil {
		return nil, err
	}
	var all []uint64
	for _, ws := range parts {
		all = append(all, ws...)
	}
	data.SortU64(all)
	splitters := make([]uint64, 0, w.Size()-1)
	for i := 1; i < w.Size(); i++ {
		splitters = append(splitters, all[i*len(all)/w.Size()])
	}
	outParts := make([][]uint64, w.Size())
	start := 0
	for j := 0; j < w.Size()-1; j++ {
		end := start
		for end < len(mine) && mine[end] < splitters[j] {
			end++
		}
		outParts[j] = mine[start:end]
		start = end
	}
	outParts[w.Size()-1] = mine[start:]
	got, err := w.Coll.AllToAll(outParts)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, run := range got {
		out = append(out, run...) // BUG: concatenate, never merge
	}
	return out, nil
}

func main() {
	global := workload.UniformU64s(n, 1e8, 3)

	fmt.Printf("sorting %d uniform integers on %d PEs with the sort checker\n", n, pes)
	err := repro.Run(pes, 1, func(w *repro.Worker) error {
		ctx, err := repro.NewContext(w, repro.DefaultOptions())
		if err != nil {
			return err
		}
		s, e := data.SplitEven(len(global), pes, w.Rank())
		out, err := ctx.Seq(global[s:e]).Sort().Collect()
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			fmt.Printf("checker accepted; PE 0 holds %d elements, smallest %d\n", len(out), out[0])
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nrunning a buggy sorter that forgets to merge received runs...")
	err = repro.Run(pes, 2, func(w *repro.Worker) error {
		ctx, err := repro.NewContext(w, repro.DefaultOptions())
		if err != nil {
			return err
		}
		s, e := data.SplitEven(len(global), pes, w.Rank())
		local := global[s:e]
		out, err := buggySort(w, local)
		if err != nil {
			return err
		}
		aerr := ctx.AssertSorted(local, out)
		if aerr == nil {
			return fmt.Errorf("the checker missed the bug")
		}
		if !errors.Is(aerr, repro.ErrCheckFailed) {
			return aerr
		}
		if w.Rank() == 0 {
			fmt.Printf("sort checker rejected the buggy output: %v\n", aerr)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The trusted-hash-free variants: prime-field and GF(2^64)
	// polynomial permutation checks of the same sort output.
	fmt.Println("\npolynomial permutation checkers (no trusted hash function):")
	err = repro.Run(pes, 4, func(w *repro.Worker) error {
		s, e := data.SplitEven(len(global), pes, w.Rank())
		local := global[s:e]
		sorted := data.CloneU64s(local)
		data.SortU64(sorted) // local stand-in for a permuted sequence
		// Shard the local polynomial products across this PE's cores;
		// the verdict is identical for any worker count.
		par := core.NewParallelAccumulator(0)
		okPoly, err := core.CheckPermutationPolyPar(w, core.PolyPermConfig{Iterations: 2}, par, local, sorted)
		if err != nil {
			return err
		}
		okGF, err := core.CheckPermutationGFPar(w, 2, par, local, sorted)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			fmt.Printf("prime field F_(2^61-1): %v, GF(2^64) carry-less: %v\n", okPoly, okGF)
		}
		if !okPoly || !okGF {
			return fmt.Errorf("polynomial checker rejected a valid permutation")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
