// Quickstart: a distributed sum aggregation verified by the
// communication efficient checker, plus a demonstration that a silently
// corrupted result is rejected. The -transport flag switches the run
// between the in-memory, virtual-time, and TCP backends without
// touching the SPMD body.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/data"
	"repro/internal/workload"
)

func main() {
	const (
		p        = 4      // processing elements (goroutines)
		elements = 100000 // total (key, value) pairs
	)
	transport := flag.String("transport", "mem", "transport backend: mem, simnet, or tcp")
	flag.Parse()
	tr, err := repro.ParseTransport(*transport)
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.Config{Transport: tr}

	// A power-law keyed workload, like word counts in natural language.
	global := workload.ZipfPairs(elements, 10000, 100, 42)

	fmt.Printf("sum-aggregating %d pairs on %d PEs over %s with a checker (delta < 1e-9)\n", elements, p, tr)
	err = repro.RunConfig(cfg, p, 1, func(w *repro.Worker) error {
		s, e := data.SplitEven(len(global), p, w.Rank())
		out, err := repro.ReduceByKeyChecked(w, repro.DefaultOptions(), global[s:e], repro.SumFn)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			fmt.Printf("PE 0 holds %d of the aggregated keys; checker accepted the result\n", len(out))
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Now corrupt one value of the asserted result — a "soft error" —
	// and watch the checker catch it.
	fmt.Println("\ninjecting a single off-by-one fault into the asserted result...")
	err = repro.RunConfig(cfg, p, 2, func(w *repro.Worker) error {
		s, e := data.SplitEven(len(global), p, w.Rank())
		local := global[s:e]
		out, err := repro.ReduceByKeyChecked(w, repro.DefaultOptions(), local, repro.SumFn)
		if err != nil {
			return err
		}
		if w.Rank() == 0 && len(out) > 0 {
			out[0].Value++ // the silent error
		}
		ok, err := repro.CheckSum(w, repro.DefaultOptions(), local, out)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			if ok {
				return fmt.Errorf("checker missed the fault (probability < 1e-9)")
			}
			fmt.Println("checker rejected the corrupted result, as it should")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
