// Quickstart: a distributed sum aggregation verified by the
// communication efficient checker through the Context/Dataset pipeline
// API, plus a demonstration that a silently corrupted result is
// rejected — and attributed to its stage — under deferred (batched)
// verification. The -transport flag switches the run between the
// in-memory, virtual-time, and TCP backends without touching the SPMD
// body.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/data"
	"repro/internal/workload"
)

func main() {
	const (
		p        = 4      // processing elements (goroutines)
		elements = 100000 // total (key, value) pairs
	)
	transport := flag.String("transport", "mem", "transport backend: mem, simnet, or tcp")
	flag.Parse()
	tr, err := repro.ParseTransport(*transport)
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.Config{Transport: tr}

	// A power-law keyed workload, like word counts in natural language.
	global := workload.ZipfPairs(elements, 10000, 100, 42)

	fmt.Printf("sum-aggregating %d pairs on %d PEs over %s with a checker (delta < 1e-9)\n", elements, p, tr)
	err = repro.RunConfig(cfg, p, 1, func(w *repro.Worker) error {
		ctx, err := repro.NewContext(w, repro.DefaultOptions())
		if err != nil {
			return err
		}
		s, e := data.SplitEven(len(global), p, w.Rank())
		out, err := ctx.Pairs(global[s:e]).ReduceByKey(repro.SumFn).Collect()
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			st := ctx.Stats()[0]
			fmt.Printf("PE 0 holds %d of the aggregated keys; checker accepted (%d op bytes vs %d checker bytes sent)\n",
				len(out), st.OpBytes, st.CheckerBytes)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Now corrupt one value of the asserted result — a "soft error" —
	// and watch the deferred checker catch it and name the stage.
	fmt.Println("\ninjecting a single off-by-one fault into the asserted result...")
	err = repro.RunConfig(cfg, p, 2, func(w *repro.Worker) error {
		opts := repro.DefaultOptions()
		opts.Mode = repro.CheckDeferred
		ctx, err := repro.NewContext(w, opts)
		if err != nil {
			return err
		}
		s, e := data.SplitEven(len(global), p, w.Rank())
		local := global[s:e]
		out, err := ctx.Pairs(local).ReduceByKey(repro.SumFn).Collect()
		if err != nil {
			return err
		}
		bad := data.ClonePairs(out)
		if w.Rank() == 0 && len(bad) > 0 {
			bad[0].Value++ // the silent error
		}
		if err := ctx.AssertSum(local, bad); err != nil {
			return err
		}
		verr := ctx.Verify() // one batched round resolves both stages
		if verr == nil {
			return fmt.Errorf("checker missed the fault (probability < 1e-9)")
		}
		if !errors.Is(verr, repro.ErrCheckFailed) {
			return verr
		}
		if w.Rank() == 0 {
			fmt.Printf("deferred verification rejected the corrupted result: %v\n", verr)
			for _, st := range ctx.Stats() {
				fmt.Printf("  stage %-12s verdict %s\n", st.Stage, st.Verdict)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
