// Wordcount — the workload the paper's power-law experiments model —
// with a checked distributed reduction on the pipeline API, a
// fault-injection demonstration, and a report of the checker's
// communication volume versus the operation's, read straight from the
// per-stage CheckStats the Context records.
package main

import (
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"sort"

	"repro"
	"repro/internal/data"
	"repro/internal/hashing"
	"repro/internal/manipulate"
	"repro/internal/workload"
)

const (
	pes        = 4
	totalWords = 200000
	vocabulary = 5000
)

func wordKey(w string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(w))
	return h.Sum64()
}

func main() {
	words := workload.Words(totalWords, vocabulary, 7)
	// Key each word by a 64-bit hash; remember the dictionary so we can
	// print words back.
	dict := make(map[uint64]string)
	global := make([]data.Pair, len(words))
	for i, w := range words {
		k := wordKey(w)
		dict[k] = w
		global[i] = data.Pair{Key: k, Value: 1}
	}

	// The checked wordcount: one pipeline stage; its CheckStats entry
	// meters operation and checker communication separately.
	counts := make(map[uint64]uint64)
	perPE := make([]repro.CheckStats, pes)
	err := repro.Run(pes, 1, func(w *repro.Worker) error {
		ctx, err := repro.NewContext(w, repro.DefaultOptions())
		if err != nil {
			return err
		}
		s, e := data.SplitEven(len(global), pes, w.Rank())
		out, err := ctx.Pairs(global[s:e]).ReduceByKey(repro.SumFn).Collect()
		if err != nil {
			return err
		}
		flat := make([]uint64, 0, 2*len(out))
		for _, pr := range out {
			flat = append(flat, pr.Key, pr.Value)
		}
		all, err := w.Coll.Gather(0, flat)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			for _, ws := range all {
				for i := 0; i+2 <= len(ws); i += 2 {
					counts[ws[i]] = ws[i+1]
				}
			}
		}
		perPE[w.Rank()] = ctx.Stats()[0]
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	var opBytes, chkBytes int64
	for _, st := range perPE {
		if st.OpBytes > opBytes {
			opBytes = st.OpBytes
		}
		if st.CheckerBytes > chkBytes {
			chkBytes = st.CheckerBytes
		}
	}

	// Report the top words.
	type wc struct {
		word  string
		count uint64
	}
	var tops []wc
	for k, v := range counts {
		tops = append(tops, wc{dict[k], v})
	}
	sort.Slice(tops, func(i, j int) bool {
		if tops[i].count != tops[j].count {
			return tops[i].count > tops[j].count
		}
		return tops[i].word < tops[j].word
	})
	fmt.Printf("wordcount over %d words, %d distinct; top 5:\n", totalWords, len(tops))
	for _, t := range tops[:5] {
		fmt.Printf("  %-8s %6d\n", t.word, t.count)
	}
	fmt.Printf("\nbottleneck communication: operation %d bytes, checker %d bytes (%.2f%%)\n",
		opBytes, chkBytes, 100*float64(chkBytes)/float64(opBytes))

	// Fault injection: apply each Table 4 manipulator to the input the
	// "computation" sees and show the checker's verdicts.
	fmt.Println("\nfault injection (Table 4 manipulators):")
	rng := hashing.NewMT19937_64(5)
	for _, m := range manipulate.PairManipulators() {
		bad := data.ClonePairs(global)
		if !m.Apply(bad, rng, vocabulary) {
			// SwitchValues cannot fault a count workload: every value
			// is 1, so there is nothing to switch.
			fmt.Printf("  %-14s not applicable to a count workload\n", m.Name)
			continue
		}
		badCounts := data.MapToPairs(data.PairsToMapSum(bad))
		caught := false
		err := repro.Run(pes, 3, func(w *repro.Worker) error {
			ctx, err := repro.NewContext(w, repro.DefaultOptions())
			if err != nil {
				return err
			}
			s, e := data.SplitEven(len(global), pes, w.Rank())
			bs, be := data.SplitEven(len(badCounts), pes, w.Rank())
			aerr := ctx.AssertSum(global[s:e], badCounts[bs:be])
			if aerr != nil && !errors.Is(aerr, repro.ErrCheckFailed) {
				return aerr
			}
			if w.Rank() == 0 {
				caught = aerr != nil
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "DETECTED"
		if !caught {
			verdict = "missed (prob < 1.3e-9)"
		}
		fmt.Printf("  %-14s %s\n", m.Name, verdict)
	}
}
