// Wordcount — the workload the paper's power-law experiments model —
// with a checked distributed reduction, a fault-injection demonstration,
// and a report of the checker's bottleneck communication volume versus
// the operation's.
package main

import (
	"fmt"
	"hash/fnv"
	"log"
	"sort"
	"sync"

	"repro"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/hashing"
	"repro/internal/manipulate"
	"repro/internal/ops"
	"repro/internal/workload"
)

const (
	pes        = 4
	totalWords = 200000
	vocabulary = 5000
)

func wordKey(w string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(w))
	return h.Sum64()
}

func main() {
	words := workload.Words(totalWords, vocabulary, 7)
	// Key each word by a 64-bit hash; remember the dictionary so we can
	// print words back.
	dict := make(map[uint64]string)
	global := make([]data.Pair, len(words))
	for i, w := range words {
		k := wordKey(w)
		dict[k] = w
		global[i] = data.Pair{Key: k, Value: 1}
	}

	// Run the checked wordcount on an instrumented network so we can
	// audit communication volume.
	net := comm.NewMemNetwork(pes)
	defer net.Close()

	var mu sync.Mutex
	counts := make(map[uint64]uint64)
	cfg := core.SumConfig{Iterations: 6, Buckets: 32, RHatLog: 9, Family: hashing.FamilyCRC}

	err := dist.RunNetwork(net, 1, func(w *dist.Worker) error {
		s, e := data.SplitEven(len(global), pes, w.Rank())
		local := global[s:e]
		pt := ops.NewPartitioner(99, pes)
		out, err := ops.ReduceByKey(w, pt, local, ops.SumFn)
		if err != nil {
			return err
		}
		mu.Lock()
		for _, pr := range out {
			counts[pr.Key] = pr.Value
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	opVolume := comm.NetworkBottleneck(net)
	comm.ResetNetwork(net)

	err = dist.RunNetwork(net, 2, func(w *dist.Worker) error {
		s, e := data.SplitEven(len(global), pes, w.Rank())
		// Each PE re-derives its share of the asserted output.
		pt := ops.NewPartitioner(99, pes)
		var mine []data.Pair
		mu.Lock()
		for k, v := range counts {
			if pt.PE(k) == w.Rank() {
				mine = append(mine, data.Pair{Key: k, Value: v})
			}
		}
		mu.Unlock()
		ok, err := core.CheckSumAgg(w, cfg, global[s:e], mine)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("checker rejected a correct wordcount")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	checkVolume := comm.NetworkBottleneck(net)

	// Report the top words.
	type wc struct {
		word  string
		count uint64
	}
	var tops []wc
	for k, v := range counts {
		tops = append(tops, wc{dict[k], v})
	}
	sort.Slice(tops, func(i, j int) bool {
		if tops[i].count != tops[j].count {
			return tops[i].count > tops[j].count
		}
		return tops[i].word < tops[j].word
	})
	fmt.Printf("wordcount over %d words, %d distinct; top 5:\n", totalWords, len(tops))
	for _, t := range tops[:5] {
		fmt.Printf("  %-8s %6d\n", t.word, t.count)
	}
	fmt.Printf("\nbottleneck communication: operation %d bytes, checker %d bytes (%.2f%%)\n",
		opVolume.MaxBytes, checkVolume.MaxBytes,
		100*float64(checkVolume.MaxBytes)/float64(opVolume.MaxBytes))

	// Fault injection: apply each Table 4 manipulator to the input the
	// "computation" sees and show the checker's verdicts.
	fmt.Println("\nfault injection (Table 4 manipulators):")
	rng := hashing.NewMT19937_64(5)
	for _, m := range manipulate.PairManipulators() {
		bad := data.ClonePairs(global)
		if !m.Apply(bad, rng, vocabulary) {
			// SwitchValues cannot fault a count workload: every value
			// is 1, so there is nothing to switch.
			fmt.Printf("  %-14s not applicable to a count workload\n", m.Name)
			continue
		}
		badCounts := data.MapToPairs(data.PairsToMapSum(bad))
		caught := false
		err := repro.Run(pes, 3, func(w *repro.Worker) error {
			s, e := data.SplitEven(len(global), pes, w.Rank())
			bs, be := data.SplitEven(len(badCounts), pes, w.Rank())
			ok, err := repro.CheckSum(w, repro.DefaultOptions(), global[s:e], badCounts[bs:be])
			if err != nil {
				return err
			}
			if w.Rank() == 0 {
				caught = !ok
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "DETECTED"
		if !caught {
			verdict = "missed (prob < 1.3e-9)"
		}
		fmt.Printf("  %-14s %s\n", m.Name, verdict)
	}
}
