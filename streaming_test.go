package repro_test

import (
	"errors"
	"strings"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/ops"
	"repro/internal/stream"
)

// The acceptance scenario of the streaming subsystem: checked sum
// aggregation and checked sort verified over generator-backed sources
// whose total element count exceeds any single resident chunk by >=
// 100x — clean runs pass, a corrupted chunk is detected, chunked
// residues are bit-identical to the one-shot path, and CheckStats
// reports chunk counts and the peak resident footprint.

const (
	streamN     = 300_000 // elements per PE
	streamChunk = 3_000   // resident chunk: N/chunk = 100x
	streamKeys  = 1_000
)

// streamVal is the deterministic test payload of global element (r, i).
func streamVal(r, i int) uint64 {
	return (uint64(r*streamN+i) * 2654435761) % (1 << 30)
}

// sumInput yields PE r's input share chunk by chunk; corrupt flips one
// value in chunk 57 of PE 1's stream.
func sumInput(r int, corrupt bool) repro.PairSource {
	return repro.GenPairs(streamN, streamChunk, func(i int) repro.Pair {
		v := streamVal(r, i)
		if corrupt && r == 1 && i == 57*streamChunk+123 {
			v++
		}
		return repro.Pair{Key: uint64(i % streamKeys), Value: v}
	})
}

// sumOutputs computes the correct per-key sums over all PEs and deals
// them out round-robin: PE r holds the keys with k % p == r.
func sumOutputs(p int) [][]repro.Pair {
	sums := make([]uint64, streamKeys)
	for r := 0; r < p; r++ {
		for i := 0; i < streamN; i++ {
			sums[i%streamKeys] += streamVal(r, i)
		}
	}
	out := make([][]repro.Pair, p)
	for k, s := range sums {
		out[k%p] = append(out[k%p], repro.Pair{Key: uint64(k), Value: s})
	}
	return out
}

func TestStreamSumLargerThanRAM(t *testing.T) {
	const p = 2
	outs := sumOutputs(p)
	stats := make([]repro.CheckStats, p)
	err := repro.Run(p, 42, func(w *repro.Worker) error {
		ctx, err := repro.NewContext(w, repro.DefaultOptions())
		if err != nil {
			return err
		}
		if err := ctx.StreamPairs(sumInput(w.Rank(), false)).AssertSum(repro.SlicePairs(outs[w.Rank()], 64)); err != nil {
			return err
		}
		stats[w.Rank()] = ctx.Stats()[0]
		return nil
	})
	if err != nil {
		t.Fatalf("clean streamed sum rejected: %v", err)
	}
	outChunks := (len(outs[0]) + 63) / 64
	for r, st := range stats {
		if st.Verdict != repro.VerdictPass {
			t.Errorf("rank %d verdict %v", r, st.Verdict)
		}
		if st.Chunks != streamN/streamChunk+outChunks {
			t.Errorf("rank %d chunks = %d, want %d", r, st.Chunks, streamN/streamChunk+outChunks)
		}
		if st.PeakResident != streamChunk {
			t.Errorf("rank %d peak resident = %d, want %d", r, st.PeakResident, streamChunk)
		}
		if st.ElementsIn != streamN || st.ElementsOut != len(outs[r]) {
			t.Errorf("rank %d element counts %d/%d", r, st.ElementsIn, st.ElementsOut)
		}
	}

	// One flipped value inside one chunk of one PE's stream must be
	// detected.
	err = repro.Run(p, 42, func(w *repro.Worker) error {
		ctx, err := repro.NewContext(w, repro.DefaultOptions())
		if err != nil {
			return err
		}
		return ctx.StreamPairs(sumInput(w.Rank(), true)).AssertSum(repro.SlicePairs(outs[w.Rank()], 64))
	})
	if !errors.Is(err, repro.ErrCheckFailed) {
		t.Fatalf("corrupted chunk not detected: %v", err)
	}
}

// sortShare yields PE r's input share — the range [r*n, (r+1)*n) in a
// scrambled (XOR-bijection) order — and the asserted sorted output in
// ascending order. kind selects a corruption: "dup" replaces one value
// with a duplicate of its predecessor (output stays sorted, multiset
// wrong), "order" drops one chunk-initial value below the previous
// chunk's last (placement wrong).
func sortShare(r, n, chunk int, kind string) (in, out repro.SeqSource) {
	scramble := 0x1A5A & (n - 1)
	in = repro.GenSeq(n, chunk, func(i int) uint64 { return uint64(r*n + (i ^ scramble)) })
	out = repro.GenSeq(n, chunk, func(i int) uint64 {
		switch {
		case kind == "dup" && r == 1 && i == n/3:
			return uint64(r*n + i - 1)
		case kind == "order" && r == 0 && i == 64*chunk:
			return uint64(r*n + i - 5)
		}
		return uint64(r*n + i)
	})
	return in, out
}

func TestStreamSortLargerThanRAM(t *testing.T) {
	const (
		p     = 2
		n     = 1 << 17
		chunk = 1 << 10 // 128 chunks per side
	)
	stats := make([]repro.CheckStats, p)
	err := repro.Run(p, 7, func(w *repro.Worker) error {
		ctx, err := repro.NewContext(w, repro.DefaultOptions())
		if err != nil {
			return err
		}
		in, out := sortShare(w.Rank(), n, chunk, "")
		if err := ctx.StreamSeq(in).AssertSorted(out); err != nil {
			return err
		}
		stats[w.Rank()] = ctx.Stats()[0]
		return nil
	})
	if err != nil {
		t.Fatalf("clean streamed sort rejected: %v", err)
	}
	for r, st := range stats {
		if st.Chunks != 2*n/chunk || st.PeakResident != chunk {
			t.Errorf("rank %d metering: chunks %d peak %d", r, st.Chunks, st.PeakResident)
		}
	}

	for _, kind := range []string{"dup", "order"} {
		err := repro.Run(p, 7, func(w *repro.Worker) error {
			ctx, err := repro.NewContext(w, repro.DefaultOptions())
			if err != nil {
				return err
			}
			in, out := sortShare(w.Rank(), n, chunk, kind)
			return ctx.StreamSeq(in).AssertSorted(out)
		})
		if !errors.Is(err, repro.ErrCheckFailed) {
			t.Fatalf("corrupted sort (%s) not detected: %v", kind, err)
		}
	}
}

// TestStreamResiduesMatchOneShot pins the acceptance criterion that the
// chunked path produces bit-identical residues: the sealed streaming
// states equal the one-shot states over the materialized streams.
func TestStreamResiduesMatchOneShot(t *testing.T) {
	opts := repro.DefaultOptions()

	var input, output []data.Pair
	if err := stream.DrainPairs(sumInput(1, false), func(c []data.Pair) {
		input = append(input, data.ClonePairs(c)...)
	}); err != nil {
		t.Fatal(err)
	}
	for _, o := range sumOutputs(2) {
		output = append(output, o...)
	}
	oneShot := core.NewSumAggState("s", opts.Sum, 99, input, output)
	acc := stream.NewSumAccumulator("s", opts.Sum, 99, core.Serial, false)
	if err := acc.DrainInput(sumInput(1, false)); err != nil {
		t.Fatal(err)
	}
	acc.AddOutputChunk(output)
	chunked := acc.Seal()
	cw, ow := chunked.Words(), oneShot.Words()
	for i := range cw {
		if cw[i] != ow[i] {
			t.Fatalf("streamed sum residue differs from one-shot at word %d", i)
		}
	}

	in, out := sortShare(0, 1<<14, 512, "")
	var xs, sorted []uint64
	if err := stream.DrainSeq(in, func(c []uint64) { xs = append(xs, data.CloneU64s(c)...) }); err != nil {
		t.Fatal(err)
	}
	if err := stream.DrainSeq(out, func(c []uint64) { sorted = append(sorted, data.CloneU64s(c)...) }); err != nil {
		t.Fatal(err)
	}
	oneShotSort := core.NewSortedState("s", opts.Perm, 99, [][]uint64{xs}, sorted)
	sacc := stream.NewSortAccumulator("s", opts.Perm, 99, core.Serial)
	in, out = sortShare(0, 1<<14, 512, "")
	if err := sacc.DrainInput(in); err != nil {
		t.Fatal(err)
	}
	if err := sacc.DrainOutput(out); err != nil {
		t.Fatal(err)
	}
	cw, ow = sacc.Seal().Words(), oneShotSort.Words()
	for i := range cw {
		if cw[i] != ow[i] {
			t.Fatalf("streamed sort residue differs from one-shot at word %d", i)
		}
	}
}

// countingPairs wraps a source and counts Next calls, so tests can
// assert CheckOff consumes nothing.
type countingPairs struct {
	src   repro.PairSource
	calls int
}

func (s *countingPairs) Next() ([]repro.Pair, error) {
	s.calls++
	return s.src.Next()
}

func TestStreamDeferredAttributionAndOff(t *testing.T) {
	const (
		p     = 2
		n     = 1 << 14
		chunk = 256
	)
	// Deferred: a clean streamed sum and a corrupted streamed sort
	// resolve in one batched round; the failure names the sort stage.
	verr := make([]error, p)
	stats := make([][]repro.CheckStats, p)
	sums := make([][][]repro.Pair, 1)
	sums[0] = sumOutputs(p)
	err := repro.Run(p, 11, func(w *repro.Worker) error {
		opts := repro.DefaultOptions()
		opts.Mode = repro.CheckDeferred
		ctx, err := repro.NewContext(w, opts)
		if err != nil {
			return err
		}
		if err := ctx.StreamPairs(sumInput(w.Rank(), false)).AssertSum(repro.SlicePairs(sums[0][w.Rank()], 0)); err != nil {
			return err
		}
		in, out := sortShare(w.Rank(), n, chunk, "dup")
		if err := ctx.StreamSeq(in).AssertSorted(out); err != nil {
			return err
		}
		if got := ctx.Pending(); got != 2 {
			t.Errorf("pending = %d before Verify", got)
		}
		verr[w.Rank()] = ctx.Verify()
		stats[w.Rank()] = ctx.Stats()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		if !errors.Is(verr[r], repro.ErrCheckFailed) {
			t.Fatalf("rank %d: Verify = %v, want check failure", r, verr[r])
		}
		if !strings.Contains(verr[r].Error(), "StreamSorted#1") {
			t.Errorf("rank %d: failure not attributed to the sort stage: %v", r, verr[r])
		}
		if stats[r][0].Verdict != repro.VerdictPass || stats[r][1].Verdict != repro.VerdictFail {
			t.Errorf("rank %d: verdicts %v/%v", r, stats[r][0].Verdict, stats[r][1].Verdict)
		}
		if stats[r][0].BatchWords == 0 {
			t.Errorf("rank %d: streamed stage contributed no batch words", r)
		}
	}

	// CheckOff must not consume the sources at all.
	err = repro.Run(p, 13, func(w *repro.Worker) error {
		opts := repro.DefaultOptions()
		opts.Mode = repro.CheckOff
		ctx, err := repro.NewContext(w, opts)
		if err != nil {
			return err
		}
		src := &countingPairs{src: sumInput(w.Rank(), false)}
		if err := ctx.StreamPairs(src).AssertSum(repro.SlicePairs(nil, 0)); err != nil {
			return err
		}
		if src.calls != 0 {
			t.Errorf("rank %d: CheckOff consumed the source (%d Next calls)", w.Rank(), src.calls)
		}
		if st := ctx.Stats()[0]; st.Verdict != repro.VerdictSkipped {
			t.Errorf("rank %d: verdict %v under CheckOff", w.Rank(), st.Verdict)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStreamSingleUse pins the reuse guard: a second Assert on the same
// streamed view must fail loudly instead of vacuously verifying an
// exhausted source over zero elements.
func TestStreamSingleUse(t *testing.T) {
	err := repro.Run(1, 3, func(w *repro.Worker) error {
		ctx, err := repro.NewContext(w, repro.DefaultOptions())
		if err != nil {
			return err
		}
		pairs := []repro.Pair{{Key: 1, Value: 2}}
		streamed := ctx.StreamPairs(repro.SlicePairs(pairs, 0))
		if err := streamed.AssertSum(repro.SlicePairs(pairs, 0)); err != nil {
			return err
		}
		err = streamed.AssertSum(repro.SlicePairs(pairs, 0))
		if err == nil || !strings.Contains(err.Error(), "single-use") {
			t.Errorf("reused stream not rejected: %v", err)
		}
		if ctx.Err() == nil {
			t.Error("reuse did not stick as the Context error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStreamRedistAndPermutation exercises the remaining streamed
// checkers through the public API: a correct redistribution passes and
// a misplaced pair is caught deterministically; a cross-PE permutation
// passes and a mutated element is caught.
func TestStreamRedistAndPermutation(t *testing.T) {
	const p = 2
	global := make([]repro.Pair, 4000)
	for i := range global {
		global[i] = repro.Pair{Key: uint64(i * 31 % 977), Value: uint64(i)}
	}
	for _, corrupt := range []bool{false, true} {
		err := repro.Run(p, 17, func(w *repro.Worker) error {
			ctx, err := repro.NewContext(w, repro.DefaultOptions())
			if err != nil {
				return err
			}
			seed, err := w.CommonSeed()
			if err != nil {
				return err
			}
			// The Context's partitioner is derived exactly like this (same
			// seed, same size); the test replays it to build a correct
			// "after" share.
			pt := ops.NewPartitioner(seed, w.Size())
			s, e := data.SplitEven(len(global), p, w.Rank())
			before := global[s:e]
			var after []repro.Pair
			for _, pr := range global {
				if pt.PE(pr.Key) == w.Rank() {
					after = append(after, pr)
				}
			}
			if corrupt && w.Rank() == 1 {
				after[len(after)/2].Value++ // received pair mutated in flight
			}
			return ctx.StreamPairs(repro.SlicePairs(before, 100)).
				AssertRedistributed(repro.SlicePairs(after, 100))
		})
		if corrupt && !errors.Is(err, repro.ErrCheckFailed) {
			t.Fatalf("corrupted redistribution not detected: %v", err)
		}
		if !corrupt && err != nil {
			t.Fatalf("clean redistribution rejected: %v", err)
		}
	}

	for _, corrupt := range []bool{false, true} {
		err := repro.Run(p, 19, func(w *repro.Worker) error {
			ctx, err := repro.NewContext(w, repro.DefaultOptions())
			if err != nil {
				return err
			}
			n := 5000
			// Output is the other PE's input: a pure cross-PE permutation.
			mine := repro.GenSeq(n, 300, func(i int) uint64 { return uint64(w.Rank()*n + i) })
			theirs := repro.GenSeq(n, 300, func(i int) uint64 {
				v := uint64((1-w.Rank())*n + i)
				if corrupt && w.Rank() == 0 && i == n-1 {
					v ^= 4
				}
				return v
			})
			return ctx.StreamSeq(mine).AssertPermutation(theirs)
		})
		if corrupt && !errors.Is(err, repro.ErrCheckFailed) {
			t.Fatalf("corrupted permutation not detected: %v", err)
		}
		if !corrupt && err != nil {
			t.Fatalf("clean permutation rejected: %v", err)
		}
	}
}
