// Package repro is the public façade of the reproduction of
// "Communication Efficient Checking of Big Data Operations"
// (Hübschle-Schneider and Sanders): a data-parallel framework in the
// style of Thrill whose operations are verified by communication
// efficient probabilistic checkers. Checkers have one-sided error —
// correct results are never rejected — and add o(n/p) bottleneck
// communication volume.
//
// # Pipelines
//
// Work is expressed as a pipeline on a Context, created once per
// Worker. Entry points Pairs and Seq wrap this PE's local share of a
// distributed collection; fluent operations chain off them and register
// their checkers with the Context:
//
//	err := repro.Run(4, 42, func(w *repro.Worker) error {
//		ctx, err := repro.NewContext(w, repro.DefaultOptions())
//		if err != nil {
//			return err
//		}
//		sums, err := ctx.Pairs(myShare(w.Rank())).ReduceByKey(repro.SumFn).Collect()
//		...
//	})
//
// Options.Mode selects when checkers resolve their collective rounds:
//
//	CheckEager     every operation verifies inline (default)
//	CheckDeferred  checkers accumulate locally; one batched round at
//	               ctx.Verify() resolves all of them and names any
//	               failing stage
//	CheckOff       no checking, for baseline timing
//
// The paper's checkers are designed to run concurrently with the
// checked operation; CheckDeferred realizes the communication half of
// that design point — k chained operations pay ~1 verification round
// instead of k. Every stage additionally records a CheckStats entry
// (data volumes, checker bytes, wall times, verdict) retrievable from
// the Context.
//
// For data that never fits in memory at once, Context.StreamPairs and
// Context.StreamSeq verify operations over chunked sources (slice-,
// channel-, or generator-backed; see PairSource): the checker partial
// accumulates chunk by chunk with only one chunk resident, sealed
// states are bit-identical to the one-shot path, and CheckStats
// reports chunk counts and the peak resident footprint.
//
// The former top-level operations (ReduceByKeyChecked and friends)
// remain as deprecated thin wrappers over an eager Context.
//
// See examples/ for runnable programs and internal/exp for the
// experiment harness that regenerates the paper's tables and figures.
package repro

import (
	"errors"
	"sort"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/hashing"
	"repro/internal/obs"
	"repro/internal/ops"
)

// ErrCheckFailed reports that a checker rejected an operation's result:
// with probability at least 1-delta the computation was incorrect.
// Stage-level failures (StageError) unwrap to it.
var ErrCheckFailed = errors.New("repro: checker rejected the operation result")

// Re-exported building blocks, so applications only import this
// package.
type (
	// Pair is a (key, value) record.
	Pair = data.Pair
	// Triple is a (key, sum, count) record of average aggregation.
	Triple = data.Triple
	// Worker is one PE's execution context inside Run.
	Worker = dist.Worker
	// ReduceFn combines two values of equal keys.
	ReduceFn = ops.ReduceFn
	// Group is one key's collected values from GroupByKey.
	Group = ops.Group
	// JoinRow is one inner-join match.
	JoinRow = ops.JoinRow
	// MinMaxResult is the replicated result + witness certificate of
	// min/max aggregation.
	MinMaxResult = ops.MinMaxResult
	// SumConfig configures sum aggregation checkers (Table 3 syntax).
	SumConfig = core.SumConfig
	// PermConfig configures permutation/sort checkers.
	PermConfig = core.PermConfig
)

// SumFn adds values (wrapping); XorFn combines bitwise.
var (
	SumFn = ops.SumFn
	XorFn = ops.XorFn
)

// Run executes body on p PEs over an in-memory network; see dist.Run.
func Run(p int, seed uint64, body func(w *Worker) error) error {
	return dist.Run(p, seed, body)
}

// Config selects the transport backend (mem, simnet, tcp) and run
// limits for RunConfig. Timeout is plumbed into the transport as the
// per-operation communication deadline and also bounds the whole run;
// the zero value is the in-memory network with the default deadlock
// backstop. See dist.Config.
type Config = dist.Config

// Transport names a point-to-point backend for RunConfig.
type Transport = dist.Transport

// The available transports.
const (
	TransportMem = dist.TransportMem
	TransportSim = dist.TransportSim
	TransportTCP = dist.TransportTCP
)

// ParseTransport converts a flag value ("mem", "simnet", "tcp") into a
// Transport.
func ParseTransport(s string) (Transport, error) { return dist.ParseTransport(s) }

// RunConfig executes body on p PEs over the transport cfg selects; see
// dist.RunConfig.
func RunConfig(cfg Config, p int, seed uint64, body func(w *Worker) error) error {
	return dist.RunConfig(cfg, p, seed, body)
}

// Options selects checker configurations and the check mode for a
// Context's operations.
type Options struct {
	// Sum parameterises sum/count/average/median checking.
	Sum core.SumConfig
	// Perm parameterises permutation/sort/union/merge/redistribution
	// checking.
	Perm core.PermConfig
	// Zip parameterises zip checking.
	Zip core.ZipConfig
	// Mode selects when checkers resolve their collective rounds; the
	// zero value is CheckEager.
	Mode CheckMode
	// Parallelism bounds the goroutines a checker's local accumulation
	// phase fans out to on this PE: 0 (the default) selects
	// runtime.GOMAXPROCS(0), 1 restores the fully serial behavior.
	// Verdicts and checker states are identical for every setting —
	// only the local wall time changes. Small inputs stay serial
	// regardless.
	Parallelism int
	// NoOverlap disables resolve/compute overlap in CheckDeferred mode:
	// Context.VerifyAsync degrades to the synchronous Verify instead of
	// launching the batched resolution on a sub-communicator and
	// returning immediately. Verdicts, VerifySummary attribution, and
	// checker residues are identical either way — overlap changes only
	// when the round rides the wire — so this is a debugging and
	// measurement switch, not a soundness one.
	NoOverlap bool
	// Tracer, when non-nil, is installed on the Context's worker by
	// NewContext: every stage, collective round, receive wait, and
	// resolve round records a span (internal/obs). Export the result
	// with obs.Tracer.WriteChromeTrace, or cross-rank with
	// dist.GatherSpans. Nil — the default — costs nothing on the hot
	// paths.
	Tracer *obs.Tracer
}

// WithParallelism returns a copy of the Options with the local
// accumulation fan-out bound set to n; see Options.Parallelism.
func (o Options) WithParallelism(n int) Options {
	o.Parallelism = n
	return o
}

// DefaultOptions returns a configuration with failure probability below
// 1e-9 for every checker at modest cost (the paper's "6×32 CRC m9"
// scaling configuration and a 32-bit two-iteration fingerprint), in
// eager mode.
func DefaultOptions() Options {
	return Options{
		Sum:  core.SumConfig{Iterations: 6, Buckets: 32, RHatLog: 9, Family: hashing.FamilyCRC},
		Perm: core.PermConfig{Family: hashing.FamilyTab, LogH: 32, Iterations: 2},
		Zip:  core.ZipConfig{Iterations: 2},
	}
}

// CheckSum verifies an asserted sum aggregation result against its
// input without re-running the operation — the pure checker interface
// for outputs produced elsewhere (Theorem 1). For the pipeline form see
// Context.AssertSum.
func CheckSum(w *Worker, opts Options, input, output []Pair) (bool, error) {
	return core.CheckSumAgg(w, opts.Sum, input, output)
}

// CheckSorted verifies that output is a sorted permutation of input
// without re-running the sort (Theorem 7). For the pipeline form see
// Context.AssertSorted.
func CheckSorted(w *Worker, opts Options, input, output []uint64) (bool, error) {
	return core.CheckSorted(w, opts.Perm, input, output)
}

// eagerContext builds the Context backing a deprecated wrapper: always
// eager, so the wrapped operation verifies inline like it always did.
func eagerContext(w *Worker, opts Options) (*Context, error) {
	opts.Mode = CheckEager
	return NewContext(w, opts)
}

// ReduceByKeyChecked aggregates values per key with fn and verifies the
// result with the sum aggregation checker (Theorem 1).
//
// Deprecated: use Context.Pairs(local).ReduceByKey(fn) — it supports
// deferred verification and stats; this wrapper remains for
// compatibility and always verifies eagerly.
func ReduceByKeyChecked(w *Worker, opts Options, local []Pair, fn ReduceFn) ([]Pair, error) {
	ctx, err := eagerContext(w, opts)
	if err != nil {
		return nil, err
	}
	return ctx.Pairs(local).ReduceByKey(fn).Collect()
}

// SortChecked sorts a distributed sequence and verifies the result with
// the sort checker (Theorem 7).
//
// Deprecated: use Context.Seq(local).Sort().
func SortChecked(w *Worker, opts Options, local []uint64) ([]uint64, error) {
	ctx, err := eagerContext(w, opts)
	if err != nil {
		return nil, err
	}
	return ctx.Seq(local).Sort().Collect()
}

// MergeChecked merges two sorted distributed sequences and verifies the
// result (Corollary 13).
//
// Deprecated: use Context.Seq(a).Merge(ctx.Seq(b)).
func MergeChecked(w *Worker, opts Options, a, b []uint64) ([]uint64, error) {
	ctx, err := eagerContext(w, opts)
	if err != nil {
		return nil, err
	}
	return ctx.Seq(a).Merge(ctx.Seq(b)).Collect()
}

// UnionChecked combines two distributed sequences and verifies the
// result (Corollary 12).
//
// Deprecated: use Context.Seq(a).Union(ctx.Seq(b)).
func UnionChecked(w *Worker, opts Options, a, b []uint64) ([]uint64, error) {
	ctx, err := eagerContext(w, opts)
	if err != nil {
		return nil, err
	}
	return ctx.Seq(a).Union(ctx.Seq(b)).Collect()
}

// ZipChecked zips two distributed sequences index-wise and verifies the
// result (Theorem 11).
//
// Deprecated: use Context.Seq(a).Zip(ctx.Seq(b)).
func ZipChecked(w *Worker, opts Options, a, b []uint64) ([]Pair, error) {
	ctx, err := eagerContext(w, opts)
	if err != nil {
		return nil, err
	}
	return ctx.Seq(a).Zip(ctx.Seq(b)).Collect()
}

// MinByKeyChecked computes per-key minima and verifies them with the
// deterministic certificate checker (Theorem 9).
//
// Deprecated: use Context.Pairs(local).MinByKey().
func MinByKeyChecked(w *Worker, opts Options, local []Pair) (MinMaxResult, error) {
	ctx, err := eagerContext(w, opts)
	if err != nil {
		return MinMaxResult{}, err
	}
	return ctx.Pairs(local).MinByKey()
}

// MaxByKeyChecked computes per-key maxima; see MinByKeyChecked.
//
// Deprecated: use Context.Pairs(local).MaxByKey().
func MaxByKeyChecked(w *Worker, opts Options, local []Pair) (MinMaxResult, error) {
	ctx, err := eagerContext(w, opts)
	if err != nil {
		return MinMaxResult{}, err
	}
	return ctx.Pairs(local).MaxByKey()
}

// MedianByKeyChecked computes per-key medians (returned as doubled
// values, replicated at every PE) and verifies them with the median
// checker using tie-breaking certificates (Theorem 10).
//
// Deprecated: use Context.Pairs(local).MedianByKey().
func MedianByKeyChecked(w *Worker, opts Options, local []Pair) ([]Pair, error) {
	ctx, err := eagerContext(w, opts)
	if err != nil {
		return nil, err
	}
	return ctx.Pairs(local).MedianByKey()
}

// AverageByKeyChecked computes per-key averages as (key, sum, count)
// triples and verifies them with the average checker (Corollary 8).
//
// Deprecated: use Context.Pairs(local).AverageByKey().
func AverageByKeyChecked(w *Worker, opts Options, local []Pair) ([]Triple, error) {
	ctx, err := eagerContext(w, opts)
	if err != nil {
		return nil, err
	}
	return ctx.Pairs(local).AverageByKey()
}

// JoinChecked computes the inner hash join of two relations with the
// redistribution phase verified invasively (Corollary 15). Rows are
// sorted by (key, left, right).
//
// Deprecated: use Context.Pairs(left).Join(ctx.Pairs(right)).
func JoinChecked(w *Worker, opts Options, left, right []Pair) ([]JoinRow, error) {
	ctx, err := eagerContext(w, opts)
	if err != nil {
		return nil, err
	}
	return ctx.Pairs(left).Join(ctx.Pairs(right))
}

// GroupByKeyChecked groups all values per key with the redistribution
// phase verified invasively (Corollary 14).
//
// Deprecated: use Context.Pairs(local).GroupByKey().
func GroupByKeyChecked(w *Worker, opts Options, local []Pair) ([]Group, error) {
	ctx, err := eagerContext(w, opts)
	if err != nil {
		return nil, err
	}
	return ctx.Pairs(local).GroupByKey()
}

// sortGroupsByKey orders groups ascending by key.
func sortGroupsByKey(groups []Group) {
	sort.Slice(groups, func(i, j int) bool { return groups[i].Key < groups[j].Key })
}

// sortJoinRows orders join rows by (key, left, right), making join
// output independent of map iteration order.
func sortJoinRows(rows []JoinRow) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Key != rows[j].Key {
			return rows[i].Key < rows[j].Key
		}
		if rows[i].Left != rows[j].Left {
			return rows[i].Left < rows[j].Left
		}
		return rows[i].Right < rows[j].Right
	})
}
