// Package repro is the public façade of the reproduction of
// "Communication Efficient Checking of Big Data Operations"
// (Hübschle-Schneider and Sanders): a data-parallel framework in the
// style of Thrill whose operations are verified by communication
// efficient probabilistic checkers.
//
// The checked operations below mirror the paper's integration model:
// each runs the distributed operation and immediately verifies it with
// the matching checker, returning ErrCheckFailed when the verdict is
// negative. Checkers have one-sided error — correct results are never
// rejected — and add o(n/p) bottleneck communication volume.
//
// Quick start:
//
//	err := repro.Run(4, 42, func(w *repro.Worker) error {
//		local := myShareOfInput(w.Rank())
//		sums, err := repro.ReduceByKeyChecked(w, repro.DefaultOptions(), local, repro.SumFn)
//		...
//	})
//
// See examples/ for runnable programs and internal/exp for the
// experiment harness that regenerates the paper's tables and figures.
package repro

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/hashing"
	"repro/internal/ops"
)

// ErrCheckFailed reports that a checker rejected an operation's result:
// with probability at least 1-delta the computation was incorrect.
var ErrCheckFailed = errors.New("repro: checker rejected the operation result")

// Re-exported building blocks, so applications only import this
// package.
type (
	// Pair is a (key, value) record.
	Pair = data.Pair
	// Triple is a (key, sum, count) record of average aggregation.
	Triple = data.Triple
	// Worker is one PE's execution context inside Run.
	Worker = dist.Worker
	// ReduceFn combines two values of equal keys.
	ReduceFn = ops.ReduceFn
	// JoinRow is one inner-join match.
	JoinRow = ops.JoinRow
	// MinMaxResult is the replicated result + witness certificate of
	// min/max aggregation.
	MinMaxResult = ops.MinMaxResult
	// SumConfig configures sum aggregation checkers (Table 3 syntax).
	SumConfig = core.SumConfig
	// PermConfig configures permutation/sort checkers.
	PermConfig = core.PermConfig
)

// SumFn adds values (wrapping); XorFn combines bitwise.
var (
	SumFn = ops.SumFn
	XorFn = ops.XorFn
)

// Run executes body on p PEs over an in-memory network; see dist.Run.
func Run(p int, seed uint64, body func(w *Worker) error) error {
	return dist.Run(p, seed, body)
}

// Config selects the transport backend (mem, simnet, tcp) and run
// limits for RunConfig; its zero value is the in-memory network with no
// timeout. See dist.Config.
type Config = dist.Config

// Transport names a point-to-point backend for RunConfig.
type Transport = dist.Transport

// The available transports.
const (
	TransportMem = dist.TransportMem
	TransportSim = dist.TransportSim
	TransportTCP = dist.TransportTCP
)

// ParseTransport converts a flag value ("mem", "simnet", "tcp") into a
// Transport.
func ParseTransport(s string) (Transport, error) { return dist.ParseTransport(s) }

// RunConfig executes body on p PEs over the transport cfg selects; see
// dist.RunConfig.
func RunConfig(cfg Config, p int, seed uint64, body func(w *Worker) error) error {
	return dist.RunConfig(cfg, p, seed, body)
}

// Options selects checker configurations for the checked operations.
type Options struct {
	// Sum parameterises sum/count/average/median checking.
	Sum core.SumConfig
	// Perm parameterises permutation/sort/union/merge/redistribution
	// checking.
	Perm core.PermConfig
	// Zip parameterises zip checking.
	Zip core.ZipConfig
}

// DefaultOptions returns a configuration with failure probability below
// 1e-9 for every checker at modest cost (the paper's "6×32 CRC m9"
// scaling configuration and a 32-bit two-iteration fingerprint).
func DefaultOptions() Options {
	return Options{
		Sum:  core.SumConfig{Iterations: 6, Buckets: 32, RHatLog: 9, Family: hashing.FamilyCRC},
		Perm: core.PermConfig{Family: hashing.FamilyTab, LogH: 32, Iterations: 2},
		Zip:  core.ZipConfig{Iterations: 2},
	}
}

// CheckSum verifies an asserted sum aggregation result against its
// input without re-running the operation — the pure checker interface
// for outputs produced elsewhere (Theorem 1).
func CheckSum(w *Worker, opts Options, input, output []Pair) (bool, error) {
	return core.CheckSumAgg(w, opts.Sum, input, output)
}

// CheckSorted verifies that output is a sorted permutation of input
// without re-running the sort (Theorem 7).
func CheckSorted(w *Worker, opts Options, input, output []uint64) (bool, error) {
	return core.CheckSorted(w, opts.Perm, input, output)
}

// partitioner derives a shared hash partitioner for this run.
func partitioner(w *Worker) (ops.Partitioner, error) {
	seed, err := w.CommonSeed()
	if err != nil {
		return ops.Partitioner{}, err
	}
	return ops.NewPartitioner(seed, w.Size()), nil
}

// ReduceByKeyChecked aggregates values per key with fn and verifies the
// result with the sum aggregation checker (Theorem 1). fn must satisfy
// the checker's requirements: associative, commutative, and
// x⊕y ≠ x for y ≠ 0 — SumFn and XorFn qualify.
func ReduceByKeyChecked(w *Worker, opts Options, local []Pair, fn ReduceFn) ([]Pair, error) {
	pt, err := partitioner(w)
	if err != nil {
		return nil, err
	}
	out, err := ops.ReduceByKey(w, pt, local, fn)
	if err != nil {
		return nil, err
	}
	ok, err := core.CheckSumAgg(w, opts.Sum, local, out)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("ReduceByKey: %w", ErrCheckFailed)
	}
	return out, nil
}

// SortChecked sorts a distributed sequence and verifies the result with
// the sort checker (Theorem 7).
func SortChecked(w *Worker, opts Options, local []uint64) ([]uint64, error) {
	out, err := ops.Sort(w, local)
	if err != nil {
		return nil, err
	}
	ok, err := core.CheckSorted(w, opts.Perm, local, out)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("Sort: %w", ErrCheckFailed)
	}
	return out, nil
}

// MergeChecked merges two sorted distributed sequences and verifies the
// result (Corollary 13).
func MergeChecked(w *Worker, opts Options, a, b []uint64) ([]uint64, error) {
	out, err := ops.Merge(w, a, b)
	if err != nil {
		return nil, err
	}
	ok, err := core.CheckMerge(w, opts.Perm, a, b, out)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("Merge: %w", ErrCheckFailed)
	}
	return out, nil
}

// UnionChecked combines two distributed sequences and verifies the
// result (Corollary 12).
func UnionChecked(w *Worker, opts Options, a, b []uint64) ([]uint64, error) {
	out, err := ops.Union(w, a, b)
	if err != nil {
		return nil, err
	}
	ok, err := core.CheckUnion(w, opts.Perm, a, b, out)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("Union: %w", ErrCheckFailed)
	}
	return out, nil
}

// ZipChecked zips two distributed sequences index-wise and verifies the
// result (Theorem 11).
func ZipChecked(w *Worker, opts Options, a, b []uint64) ([]Pair, error) {
	out, err := ops.Zip(w, a, b)
	if err != nil {
		return nil, err
	}
	ok, err := core.CheckZip(w, opts.Zip, a, b, out)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("Zip: %w", ErrCheckFailed)
	}
	return out, nil
}

// MinByKeyChecked computes per-key minima and verifies them with the
// deterministic certificate checker (Theorem 9). The result and witness
// certificate are replicated at every PE, as the checker requires.
func MinByKeyChecked(w *Worker, opts Options, local []Pair) (MinMaxResult, error) {
	pt, err := partitioner(w)
	if err != nil {
		return MinMaxResult{}, err
	}
	res, err := ops.MinByKey(w, pt, local)
	if err != nil {
		return MinMaxResult{}, err
	}
	ok, err := core.CheckMinAgg(w, local, res.Result, res.Witness)
	if err != nil {
		return MinMaxResult{}, err
	}
	if !ok {
		return MinMaxResult{}, fmt.Errorf("MinByKey: %w", ErrCheckFailed)
	}
	return res, nil
}

// MaxByKeyChecked computes per-key maxima; see MinByKeyChecked.
func MaxByKeyChecked(w *Worker, opts Options, local []Pair) (MinMaxResult, error) {
	pt, err := partitioner(w)
	if err != nil {
		return MinMaxResult{}, err
	}
	res, err := ops.MaxByKey(w, pt, local)
	if err != nil {
		return MinMaxResult{}, err
	}
	ok, err := core.CheckMaxAgg(w, local, res.Result, res.Witness)
	if err != nil {
		return MinMaxResult{}, err
	}
	if !ok {
		return MinMaxResult{}, fmt.Errorf("MaxByKey: %w", ErrCheckFailed)
	}
	return res, nil
}

// MedianByKeyChecked computes per-key medians (returned as doubled
// values, replicated at every PE) and verifies them with the median
// checker using tie-breaking certificates (Theorem 10). Works for
// arbitrary, also non-unique, values.
func MedianByKeyChecked(w *Worker, opts Options, local []Pair) ([]Pair, error) {
	pt, err := partitioner(w)
	if err != nil {
		return nil, err
	}
	groups, err := ops.GroupByKey(w, pt, local)
	if err != nil {
		return nil, err
	}
	// Derive medians and tie certificates from the grouped values, then
	// replicate both.
	flat := make([]uint64, 0, 6*len(groups))
	for _, g := range groups {
		m2 := ops.MedianOfSorted2(g.Values)
		tc := core.ComputeTieCert(g.Values, m2)
		flat = append(flat, g.Key, m2, tc.EqLow, tc.EqHigh, tc.AtSlot)
	}
	all, err := w.Coll.AllGather(flat)
	if err != nil {
		return nil, err
	}
	var medians []Pair
	ties := make(map[uint64]core.TieCert)
	for _, ws := range all {
		for i := 0; i+5 <= len(ws); i += 5 {
			medians = append(medians, Pair{Key: ws[i], Value: ws[i+1]})
			ties[ws[i]] = core.TieCert{EqLow: ws[i+2], EqHigh: ws[i+3], AtSlot: ws[i+4]}
		}
	}
	data.SortPairsByKey(medians)
	ok, err := core.CheckMedianAggTies(w, opts.Sum, local, medians, ties)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("MedianByKey: %w", ErrCheckFailed)
	}
	return medians, nil
}

// AverageByKeyChecked computes per-key averages as (key, sum, count)
// triples — the count doubling as the Corollary 8 certificate — and
// verifies them with the average checker. The result stays distributed.
func AverageByKeyChecked(w *Worker, opts Options, local []Pair) ([]Triple, error) {
	pt, err := partitioner(w)
	if err != nil {
		return nil, err
	}
	out, err := ops.AverageByKey(w, pt, local)
	if err != nil {
		return nil, err
	}
	ok, err := core.CheckAvgAgg(w, opts.Sum, local, core.AvgAssertionsFromTriples(out))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("AverageByKey: %w", ErrCheckFailed)
	}
	return out, nil
}

// JoinChecked computes the inner hash join of two relations with the
// redistribution phase verified invasively (Corollary 15); the local
// join logic itself is deterministic local work outside the checker's
// scope, per the paper.
func JoinChecked(w *Worker, opts Options, left, right []Pair) ([]JoinRow, error) {
	pt, err := partitioner(w)
	if err != nil {
		return nil, err
	}
	redL, err := ops.RedistributeByKey(w, pt, left)
	if err != nil {
		return nil, err
	}
	redR, err := ops.RedistributeByKey(w, pt, right)
	if err != nil {
		return nil, err
	}
	ok, err := core.CheckJoinRedistribution(w, opts.Perm, pt, redL.Before, redL.After, redR.Before, redR.After)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("Join: %w", ErrCheckFailed)
	}
	// Local join on the verified redistribution.
	build := make(map[uint64][]uint64, len(redL.After))
	for _, p := range redL.After {
		build[p.Key] = append(build[p.Key], p.Value)
	}
	var rows []JoinRow
	for _, p := range redR.After {
		for _, lv := range build[p.Key] {
			rows = append(rows, JoinRow{Key: p.Key, Left: lv, Right: p.Value})
		}
	}
	return rows, nil
}

// GroupByKeyChecked groups all values per key with the redistribution
// phase verified invasively (Corollary 14).
func GroupByKeyChecked(w *Worker, opts Options, local []Pair) ([]ops.Group, error) {
	pt, err := partitioner(w)
	if err != nil {
		return nil, err
	}
	red, err := ops.RedistributeByKey(w, pt, local)
	if err != nil {
		return nil, err
	}
	ok, err := core.CheckRedistribution(w, opts.Perm, pt, red.Before, red.After)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("GroupByKey: %w", ErrCheckFailed)
	}
	m := make(map[uint64][]uint64)
	for _, p := range red.After {
		m[p.Key] = append(m[p.Key], p.Value)
	}
	groups := make([]ops.Group, 0, len(m))
	for k, vs := range m {
		data.SortU64(vs)
		groups = append(groups, ops.Group{Key: k, Values: vs})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Key < groups[j].Key })
	return groups, nil
}
